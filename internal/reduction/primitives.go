// Package reduction implements the GPU batch-reduction kernels studied in
// §4.1.2 of the paper as programs for the cudasim device model:
//
//   - the classical FasterTransformer-derived baseline: per-row two-pass
//     blockReduce built on __shfl_down + shared memory + two barriers,
//   - TurboTransformers' warpAllReduceSum_XElem family: X independent
//     reductions batched per warp with interleaved shuffle chains, butterfly
//     (all-reduce) exchanges that need no broadcast, merged boundary
//     handling, and one barrier amortised over X rows,
//   - a cuDNN-style generic softmax baseline (block-per-row shared-memory
//     tree),
//
// plus LayerNorm variants using either the two-pass E(x−E(x))² formula or
// the paper's fused single-pass E(x²)−E²(x) trick (Eq. 1).
//
// Every program computes real FP32 values, so outputs are checked against
// the CPU kernels; cycle counts come from the cudasim scoreboard model.
package reduction

import "repro/internal/cudasim"

// Register allocation shared by the kernel programs. X-element variants use
// regSeg0+x / regAcc0+x / regTmp0+x for x < MaxX.
const (
	regSeg0 cudasim.Reg = iota // loaded segments (X regs)
	regSeg1
	regSeg2
	regSeg3
	regAcc0 // accumulators (X regs)
	regAcc1
	regAcc2
	regAcc3
	regTmp0 // shuffle temporaries (X regs)
	regTmp1
	regTmp2
	regTmp3
	regAux0 // broadcast values, reciprocals, partials
	regAux1
	regAux2
	regAux3
)

// MaxX is the largest row-batch the XElem kernels use. The paper's figure
// shows X=2; the released TurboTransformers code uses up to 4. We default to
// 4 for softmax rows and 2 for LayerNorm's (x, x²) moment pair.
const MaxX = 4

const negInf = float32(-3.4e38) // ~ -FLT_MAX: safe reduction identity for max

// binOp selects the combining operation of a reduction.
type binOp int

const (
	opSum binOp = iota
	opMax
)

func applyOp(w *cudasim.Warp, op binOp, dst, a, b cudasim.Reg) {
	if op == opSum {
		w.Add(dst, a, b)
	} else {
		w.Max(dst, a, b)
	}
}

// warpReduce is the classical down-shuffle reduction (Fig. 4 top): after
// log2(32) rounds lane 0 holds the result. Each SHFL.DOWN's target register
// is immediately a source of the following FADD, so the scoreboard stalls
// the warp for the shuffle latency every round — precisely the
// instruction-issue inefficiency the paper calls out.
func warpReduce(w *cudasim.Warp, op binOp, acc, tmp cudasim.Reg) {
	for delta := 16; delta >= 1; delta >>= 1 {
		w.ShflDown(tmp, acc, delta)
		applyOp(w, op, acc, acc, tmp)
	}
}

// warpAllReduce is the butterfly (XOR) variant: after log2(32) rounds every
// lane holds the result, so no separate broadcast is needed.
func warpAllReduce(w *cudasim.Warp, op binOp, acc, tmp cudasim.Reg) {
	for mask := 16; mask >= 1; mask >>= 1 {
		w.ShflXor(tmp, acc, mask)
		applyOp(w, op, acc, acc, tmp)
	}
}

// warpAllReduceX is warpAllReduceSum_XElem (Fig. 4 bottom): X independent
// butterfly reductions with their shuffle chains interleaved. Issuing the X
// shuffles back-to-back lets each round's adds overlap the shuffle latency
// of the other chains, eliminating the dependency stall.
func warpAllReduceX(w *cudasim.Warp, op binOp, accs, tmps []cudasim.Reg) {
	for mask := 16; mask >= 1; mask >>= 1 {
		for x := range accs {
			w.ShflXor(tmps[x], accs[x], mask)
		}
		for x := range accs {
			applyOp(w, op, accs[x], accs[x], tmps[x])
		}
	}
}

// warpAllReduceXSequential is the ablation of warpAllReduceX with the
// interleaving removed: the X chains run one after another, so each keeps
// its dependency stalls. Used to isolate the ILP contribution in Fig. 5.
func warpAllReduceXSequential(w *cudasim.Warp, op binOp, accs, tmps []cudasim.Reg) {
	for x := range accs {
		warpAllReduce(w, op, accs[x], tmps[x])
	}
}
