package reduction

import (
	"testing"
	"testing/quick"

	"repro/internal/cudasim"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

func dev() *cudasim.Device { return cudasim.NewDevice(cudasim.TeslaV100()) }

// checkSoftmaxFunctional runs impl on a random rows×cols problem and
// compares against the CPU softmax.
func checkSoftmaxFunctional(t *testing.T, impl SoftmaxImpl, rows, cols int, seed int64) {
	t.Helper()
	in := tensor.RandN(seed, 2, rows*cols)
	p := NewProblem(rows, cols, in.Data())
	RunSoftmax(dev(), impl, p)
	want := in.Clone()
	kernels.Softmax(want.Data(), rows, cols)
	got := tensor.FromSlice(p.Out, rows*cols)
	if !got.AllClose(want, 1e-4, 1e-5) {
		t.Fatalf("%v softmax %dx%d diverges from CPU reference (maxdiff %g)",
			impl, rows, cols, got.MaxAbsDiff(want))
	}
}

func TestSoftmaxFunctionalAllImpls(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{1, 1},    // degenerate
		{3, 10},   // sub-warp rows
		{7, 32},   // exactly one warp
		{5, 33},   // boundary lane
		{4, 100},  // multi-warp single tile
		{2, 500},  // the paper's longest sequence
		{9, 1030}, // forces tiles > 1
		{700, 17}, // more rows than concurrent blocks → rowsPerBlock > 1
	}
	for _, impl := range []SoftmaxImpl{SoftmaxBaseline, SoftmaxTurbo, SoftmaxTurboNoILP, SoftmaxCuDNN} {
		for i, sh := range shapes {
			checkSoftmaxFunctional(t, impl, sh.rows, sh.cols, int64(i+1))
		}
	}
}

func checkLayerNormFunctional(t *testing.T, impl LayerNormImpl, rows, cols int, seed int64) {
	t.Helper()
	in := tensor.RandN(seed, 2, rows*cols)
	gamma := tensor.RandUniform(seed+1, 0.5, 1.5, cols)
	beta := tensor.RandN(seed+2, 0.2, cols)
	p := NewProblem(rows, cols, in.Data()).WithAffine(gamma.Data(), beta.Data())
	RunLayerNorm(dev(), impl, p)
	want := in.Clone()
	kernels.LayerNorm(want.Data(), gamma.Data(), beta.Data(), rows, cols, lnEps)
	got := tensor.FromSlice(p.Out, rows*cols)
	if !got.AllClose(want, 1e-3, 1e-3) {
		t.Fatalf("%v layernorm %dx%d diverges from CPU reference (maxdiff %g)",
			impl, rows, cols, got.MaxAbsDiff(want))
	}
}

func TestLayerNormFunctionalAllImpls(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{2, 16},
		{3, 32},
		{5, 100},
		{2, 768},  // BERT hidden size
		{4, 1100}, // tiles > 1
		{400, 64}, // rowsPerBlock > 1
	}
	for _, impl := range []LayerNormImpl{LayerNormBaseline, LayerNormTurbo, LayerNormTurboTwoPass} {
		for i, sh := range shapes {
			checkLayerNormFunctional(t, impl, sh.rows, sh.cols, int64(i+10))
		}
	}
}

// Property: all softmax implementations agree with each other on random
// shapes (they must — they compute the same function).
func TestQuickSoftmaxImplsAgree(t *testing.T) {
	f := func(seed int64, rawRows, rawCols uint8) bool {
		rows := int(rawRows%20) + 1
		cols := int(rawCols%120) + 1
		in := tensor.RandN(seed, 1, rows*cols)
		pa := NewProblem(rows, cols, in.Data())
		pb := NewProblem(rows, cols, in.Data())
		RunSoftmax(dev(), SoftmaxBaseline, pa)
		RunSoftmax(dev(), SoftmaxTurbo, pb)
		a := tensor.FromSlice(pa.Out, rows*cols)
		b := tensor.FromSlice(pb.Out, rows*cols)
		return a.AllClose(b, 1e-4, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- timing-shape assertions: the paper's qualitative results ----------------

// Table 2 / Fig. 5 regime: with many short rows (batch 20), Turbo must beat
// the classical baseline clearly; the XElem batching is the whole point.
func TestTurboFasterManyShortRows(t *testing.T) {
	d := dev()
	rows, cols := 20*12*60, 60 // (batch 20, seq 60) attention softmax
	base := TimeSoftmax(d, SoftmaxBaseline, rows, cols)
	turbo := TimeSoftmax(d, SoftmaxTurbo, rows, cols)
	speedup := float64(base.Cycles) / float64(turbo.Cycles)
	if speedup < 1.5 {
		t.Fatalf("turbo speedup on many short rows = %.2f, want >= 1.5", speedup)
	}
}

// At (batch 1, short seq) both are launch-bound: speedup must be modest.
func TestTurboModestAtSmallBatch(t *testing.T) {
	d := dev()
	rows, cols := 12*10, 10
	base := TimeSoftmax(d, SoftmaxBaseline, rows, cols)
	turbo := TimeSoftmax(d, SoftmaxTurbo, rows, cols)
	speedup := float64(base.Cycles) / float64(turbo.Cycles)
	if speedup < 0.9 || speedup > 2.2 {
		t.Fatalf("small-batch speedup = %.2f, want ~[0.9,2.2]", speedup)
	}
}

// At (batch 20, seq 500) both should approach the bandwidth bound: speedup
// shrinks towards the traffic ratio (4/3).
func TestTurboBandwidthBoundAtLargeSizes(t *testing.T) {
	d := dev()
	rows, cols := 20*12*500, 500
	base := TimeSoftmax(d, SoftmaxBaseline, rows, cols)
	turbo := TimeSoftmax(d, SoftmaxTurbo, rows, cols)
	if base.MemoryCycles == 0 || base.Cycles < base.MemoryCycles {
		t.Fatal("baseline should be memory-bound at this size")
	}
	speedup := float64(base.Cycles) / float64(turbo.Cycles)
	if speedup < 1.05 || speedup > 1.8 {
		t.Fatalf("large-size speedup = %.2f, want ~[1.05,1.8] (traffic ratio)", speedup)
	}
}

// The ILP ablation: interleaved chains must not be slower than sequential
// chains, and must win where reduction dominates.
func TestInterleaveAblation(t *testing.T) {
	d := dev()
	rows, cols := 20*12*60, 60
	noilp := TimeSoftmax(d, SoftmaxTurboNoILP, rows, cols)
	ilp := TimeSoftmax(d, SoftmaxTurbo, rows, cols)
	if ilp.Cycles > noilp.Cycles {
		t.Fatalf("interleaving made things slower: %d vs %d", ilp.Cycles, noilp.Cycles)
	}
	if ilp.Cycles == noilp.Cycles {
		t.Fatal("interleaving should change timing in the reduction-bound regime")
	}
}

// LayerNorm: the single-pass Eq. 1 kernel must have half the barriers of the
// classical kernel and win at scale.
func TestLayerNormSyncHalved(t *testing.T) {
	d := dev()
	rows, cols := 20*100, 768
	base := TimeLayerNorm(d, LayerNormBaseline, rows, cols)
	turbo := TimeLayerNorm(d, LayerNormTurbo, rows, cols)
	if turbo.Stats.Syncs*2 != base.Stats.Syncs {
		t.Fatalf("turbo syncs %d, baseline %d: want exactly half", turbo.Stats.Syncs, base.Stats.Syncs)
	}
	if turbo.Cycles >= base.Cycles {
		t.Fatalf("turbo layernorm not faster at scale: %d vs %d", turbo.Cycles, base.Cycles)
	}
}

// The Eq. 1 ablation: single-pass must beat two-pass-with-butterfly.
func TestLayerNormEquationOneAblation(t *testing.T) {
	d := dev()
	rows, cols := 20*200, 768
	twoPass := TimeLayerNorm(d, LayerNormTurboTwoPass, rows, cols)
	onePass := TimeLayerNorm(d, LayerNormTurbo, rows, cols)
	if onePass.Cycles >= twoPass.Cycles {
		t.Fatalf("single-pass variance should win: %d vs %d", onePass.Cycles, twoPass.Cycles)
	}
}

// Timing determinism: identical launches must report identical cycles.
func TestTimingDeterministic(t *testing.T) {
	d := dev()
	a := TimeSoftmax(d, SoftmaxTurbo, 2400, 128)
	b := TimeSoftmax(d, SoftmaxTurbo, 2400, 128)
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic timing: %d vs %d", a.Cycles, b.Cycles)
	}
}

// Monotonicity: more rows can never be faster.
func TestMoreRowsNeverFaster(t *testing.T) {
	d := dev()
	prev := int64(0)
	for _, rows := range []int{100, 1000, 10000, 100000} {
		r := TimeSoftmax(d, SoftmaxTurbo, rows, 64)
		if r.Cycles < prev {
			t.Fatalf("rows=%d faster than fewer rows: %d < %d", rows, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

func TestImplStrings(t *testing.T) {
	if SoftmaxTurbo.String() != "turbo" || SoftmaxBaseline.String() != "baseline" ||
		SoftmaxCuDNN.String() != "cudnn" || SoftmaxTurboNoILP.String() != "turbo-noilp" {
		t.Fatal("softmax impl names")
	}
	if LayerNormTurbo.String() != "turbo" || LayerNormBaseline.String() != "baseline" ||
		LayerNormTurboTwoPass.String() != "turbo-twopass" {
		t.Fatal("layernorm impl names")
	}
}

func TestProblemValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short input")
		}
	}()
	NewProblem(4, 4, make([]float32, 3))
}

func TestLayerNormNeedsAffine(t *testing.T) {
	p := NewProblem(2, 8, make([]float32, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without gamma/beta")
		}
	}()
	LayerNormKernel(cudasim.TeslaV100(), LayerNormTurbo, p)
}

func TestGridFor(t *testing.T) {
	cfg := cudasim.TeslaV100()
	g := gridFor(cfg, 10, 100)
	if g.blocks != 10 || g.rowsPerBlock != 1 {
		t.Fatalf("small grid: %+v", g)
	}
	if g.warps != 4 || g.tiles != 1 {
		t.Fatalf("warps/tiles for 100 cols: %+v", g)
	}
	big := gridFor(cfg, 1_000_000, 2000)
	if big.blocks != cfg.NumSMs*cfg.BlocksPerSM {
		t.Fatalf("big grid blocks: %+v", big)
	}
	if big.warps != cfg.MaxWarpsPerBlock || big.tiles != 2 {
		t.Fatalf("wide row tiling: %+v", big)
	}
}
