package reduction

import (
	"fmt"

	"repro/internal/cudasim"
)

// SoftmaxImpl selects a softmax kernel implementation for the simulator.
type SoftmaxImpl int

const (
	// SoftmaxBaseline is the classical implementation adopted by
	// FasterTransformer (top of Fig. 4): per-row two-pass blockReduce with
	// down-shuffles, a shared-memory round and two barriers per reduction,
	// and per-access boundary handling. Each pass reloads the row.
	SoftmaxBaseline SoftmaxImpl = iota
	// SoftmaxTurbo is the paper's kernel (bottom of Fig. 4): X rows batched
	// per group, butterfly all-reduce with interleaved shuffle chains,
	// merged boundary checks, one barrier amortised over X rows, and the
	// exp values kept in registers between the sum and normalise passes
	// when the row fits in the block's registers.
	SoftmaxTurbo
	// SoftmaxTurboNoILP is the Turbo kernel with chain interleaving disabled
	// (ablation isolating the instruction-level-parallelism contribution).
	SoftmaxTurboNoILP
	// SoftmaxCuDNN models the generic library softmax the paper benchmarks
	// against (cuDNN v7.5): block-per-row with a fixed small block, separate
	// exp materialisation to global memory, generic stride arithmetic, and a
	// leaner launch path.
	SoftmaxCuDNN
)

// String returns the implementation's display name.
func (s SoftmaxImpl) String() string {
	switch s {
	case SoftmaxBaseline:
		return "baseline"
	case SoftmaxTurbo:
		return "turbo"
	case SoftmaxTurboNoILP:
		return "turbo-noilp"
	case SoftmaxCuDNN:
		return "cudnn"
	}
	return fmt.Sprintf("SoftmaxImpl(%d)", int(s))
}

// SoftmaxKernel builds the simulator kernel for the chosen implementation.
func SoftmaxKernel(cfg cudasim.Config, impl SoftmaxImpl, p *Problem) cudasim.Kernel {
	switch impl {
	case SoftmaxBaseline:
		return softmaxBaselineKernel(cfg, p)
	case SoftmaxTurbo:
		return softmaxTurboKernel(cfg, p, true)
	case SoftmaxTurboNoILP:
		return softmaxTurboKernel(cfg, p, false)
	case SoftmaxCuDNN:
		return softmaxCuDNNKernel(cfg, p)
	}
	panic("reduction: unknown softmax impl")
}

// RunSoftmax executes the kernel functionally on every block and returns
// the timing result; p.Out holds the softmax values afterwards.
func RunSoftmax(dev *cudasim.Device, impl SoftmaxImpl, p *Problem) cudasim.Result {
	return dev.Launch(SoftmaxKernel(dev.Config(), impl, p))
}

// TimeSoftmax builds a minimally-materialised problem for the given shape
// and returns the extrapolated timing (representative-block execution).
func TimeSoftmax(dev *cudasim.Device, impl SoftmaxImpl, rows, cols int) cudasim.Result {
	g := gridFor(dev.Config(), rows, cols)
	p := NewTimedProblem(rows, cols, g.rowsPerBlock, 1)
	return dev.LaunchTimed(SoftmaxKernel(dev.Config(), impl, p))
}

// --- baseline (FasterTransformer classical) ---------------------------------

func softmaxBaselineKernel(cfg cudasim.Config, p *Problem) cudasim.Kernel {
	g := gridFor(cfg, p.Rows, p.Cols)
	cols := p.Cols
	// Traffic: three passes each reload the row, one writes: 3R + 1W.
	bytes := int64(p.Rows) * int64(cols) * 4 * 4
	program := func(b *cudasim.Block) {
		W := g.warps
		for local := 0; local < g.rowsPerBlock; local++ {
			r := b.Idx()*g.rowsPerBlock + local
			if r >= p.Rows {
				break
			}
			in, out := p.rowIn(r), p.rowOut(r)

			// Pass 1: row maximum via two-pass blockReduce.
			for wi := 0; wi < W; wi++ {
				w := b.Warp(wi)
				w.Splat(regAcc0, negInf)
				for t := 0; t < g.tiles; t++ {
					off := (t*W + wi) * cfg.WarpSize
					if off >= cols {
						continue
					}
					count := minInt(cfg.WarpSize, cols-off)
					w.LoadGlobal(regSeg0, in, off, count, negInf, true)
					w.Max(regAcc0, regAcc0, regSeg0)
				}
				warpReduce(w, opMax, regAcc0, regTmp0)
				w.StoreSharedLane(regAcc0, 0, wi)
			}
			b.Sync()
			w0 := b.Warp(0)
			w0.LoadShared(regAux0, 0, W, negInf)
			warpReduce(w0, opMax, regAux0, regTmp0)
			w0.StoreSharedLane(regAux0, 0, W) // shared[W] = row max
			b.Sync()

			// Pass 2: sum of exp(x - max), reloading the row.
			for wi := 0; wi < W; wi++ {
				w := b.Warp(wi)
				w.LoadSharedBroadcast(regAux1, W)
				w.Splat(regAcc0, 0)
				for t := 0; t < g.tiles; t++ {
					off := (t*W + wi) * cfg.WarpSize
					if off >= cols {
						continue
					}
					count := minInt(cfg.WarpSize, cols-off)
					w.LoadGlobal(regSeg0, in, off, count, negInf, true)
					w.Sub(regSeg0, regSeg0, regAux1)
					w.Exp(regSeg0, regSeg0)
					w.Add(regAcc0, regAcc0, regSeg0)
				}
				warpReduce(w, opSum, regAcc0, regTmp0)
				w.StoreSharedLane(regAcc0, 0, wi)
			}
			b.Sync()
			w0.LoadShared(regAux0, 0, W, 0)
			warpReduce(w0, opSum, regAux0, regTmp0)
			w0.StoreSharedLane(regAux0, 0, W+1) // shared[W+1] = row sum
			b.Sync()

			// Pass 3: normalise, reloading the row a third time.
			for wi := 0; wi < W; wi++ {
				w := b.Warp(wi)
				w.LoadSharedBroadcast(regAux0, W)   // max
				w.LoadSharedBroadcast(regAux1, W+1) // sum
				w.Rcp(regAux2, regAux1)
				for t := 0; t < g.tiles; t++ {
					off := (t*W + wi) * cfg.WarpSize
					if off >= cols {
						continue
					}
					count := minInt(cfg.WarpSize, cols-off)
					w.LoadGlobal(regSeg0, in, off, count, negInf, true)
					w.Sub(regSeg0, regSeg0, regAux0)
					w.Exp(regSeg0, regSeg0)
					w.Mul(regSeg0, regSeg0, regAux2)
					w.StoreGlobal(regSeg0, out, off, count, true)
				}
			}
		}
	}
	return cudasim.Kernel{
		Name:        "softmax-baseline",
		GridBlocks:  g.blocks,
		WarpsPerBlk: g.warps,
		SharedWords: g.warps + 2,
		Program:     program,
		BytesMoved:  bytes,
	}
}

// --- Turbo (warpAllReduceSum_XElem) ------------------------------------------

func softmaxTurboKernel(cfg cudasim.Config, p *Problem, interleave bool) cudasim.Kernel {
	g := gridFor(cfg, p.Rows, p.Cols)
	cols := p.Cols
	// Traffic: max pass reads, exp+sum pass reads; normalise writes from
	// registers when the row fits in the block (tiles==1), otherwise it
	// reloads: 2R+1W fused, 3R+1W tiled.
	units := int64(3)
	if g.tiles > 1 {
		units = 4
	}
	bytes := int64(p.Rows) * int64(cols) * 4 * units

	reduceX := warpAllReduceX
	if !interleave {
		reduceX = warpAllReduceXSequential
	}
	name := "softmax-turbo"
	if !interleave {
		name = "softmax-turbo-noilp"
	}

	segs := []cudasim.Reg{regSeg0, regSeg1, regSeg2, regSeg3}
	accs := []cudasim.Reg{regAcc0, regAcc1, regAcc2, regAcc3}
	tmps := []cudasim.Reg{regTmp0, regTmp1, regTmp2, regTmp3}
	auxs := []cudasim.Reg{regAux0, regAux1, regAux2, regAux3}

	program := func(b *cudasim.Block) {
		W := g.warps
		skipShared := W == 1 // butterfly result is already block-wide
		for g0 := 0; g0 < g.rowsPerBlock; g0 += MaxX {
			base := b.Idx()*g.rowsPerBlock + g0
			if base >= p.Rows {
				break
			}
			xn := minInt(MaxX, g.rowsPerBlock-g0)
			if base+xn > p.Rows {
				xn = p.Rows - base
			}
			ins := make([][]float32, xn)
			outs := make([][]float32, xn)
			for x := 0; x < xn; x++ {
				ins[x] = p.rowIn(base + x)
				outs[x] = p.rowOut(base + x)
			}

			// Pass 1: X row maxima together.
			for wi := 0; wi < W; wi++ {
				w := b.Warp(wi)
				for x := 0; x < xn; x++ {
					w.Splat(accs[x], negInf)
				}
				for t := 0; t < g.tiles; t++ {
					off := (t*W + wi) * cfg.WarpSize
					if off >= cols {
						continue
					}
					count := minInt(cfg.WarpSize, cols-off)
					if count < cfg.WarpSize {
						w.ChargeBoundary() // one merged check for all X rows
					}
					for x := 0; x < xn; x++ {
						w.LoadGlobal(segs[x], ins[x], off, count, negInf, false)
					}
					for x := 0; x < xn; x++ {
						w.Max(accs[x], accs[x], segs[x])
					}
				}
				reduceX(w, opMax, accs[:xn], tmps[:xn])
				if !skipShared {
					for x := 0; x < xn; x++ {
						w.StoreSharedLane(accs[x], 0, x*W+wi)
					}
				}
			}
			if !skipShared {
				b.Sync() // one barrier for X rows
				for x := 0; x < xn; x++ {
					fw := b.Warp(x % W)
					fw.LoadShared(regAux0, x*W, W, negInf)
					warpAllReduce(fw, opMax, regAux0, regTmp0)
					fw.StoreSharedLane(regAux0, 0, MaxX*W+x)
				}
				b.Sync()
			}

			// Pass 2: sum of exp. Row maxima land in auxs[x].
			for wi := 0; wi < W; wi++ {
				w := b.Warp(wi)
				for x := 0; x < xn; x++ {
					if skipShared {
						w.Mov(auxs[x], accs[x])
					} else {
						w.LoadSharedBroadcast(auxs[x], MaxX*W+x)
					}
				}
				for x := 0; x < xn; x++ {
					w.Splat(accs[x], 0)
				}
				for t := 0; t < g.tiles; t++ {
					off := (t*W + wi) * cfg.WarpSize
					if off >= cols {
						continue
					}
					count := minInt(cfg.WarpSize, cols-off)
					if count < cfg.WarpSize {
						w.ChargeBoundary()
					}
					for x := 0; x < xn; x++ {
						w.LoadGlobal(segs[x], ins[x], off, count, negInf, false)
					}
					for x := 0; x < xn; x++ {
						w.Sub(segs[x], segs[x], auxs[x])
						w.Exp(segs[x], segs[x])
					}
					for x := 0; x < xn; x++ {
						w.Add(accs[x], accs[x], segs[x])
					}
				}
				reduceX(w, opSum, accs[:xn], tmps[:xn])
				if !skipShared {
					for x := 0; x < xn; x++ {
						w.StoreSharedLane(accs[x], 0, x*W+wi)
					}
				}
			}
			if !skipShared {
				b.Sync()
				for x := 0; x < xn; x++ {
					fw := b.Warp(x % W)
					fw.LoadShared(regAux0, x*W, W, 0)
					warpAllReduce(fw, opSum, regAux0, regTmp0)
					fw.StoreSharedLane(regAux0, 0, MaxX*W+MaxX+x)
				}
				b.Sync()
			}

			// Pass 3: normalise. With tiles==1 the exp values are still in
			// segs[x] registers, so no reload is needed.
			for wi := 0; wi < W; wi++ {
				w := b.Warp(wi)
				for x := 0; x < xn; x++ {
					if skipShared {
						w.Rcp(tmps[x], accs[x])
					} else {
						w.LoadSharedBroadcast(tmps[x], MaxX*W+MaxX+x)
						w.Rcp(tmps[x], tmps[x])
						if g.tiles > 1 {
							// The reload path subtracts the row max again;
							// the finalise step clobbered some warps' aux
							// registers, so re-broadcast it from shared.
							w.LoadSharedBroadcast(auxs[x], MaxX*W+x)
						}
					}
				}
				if g.tiles == 1 {
					off := wi * cfg.WarpSize
					if off < cols {
						count := minInt(cfg.WarpSize, cols-off)
						if count < cfg.WarpSize {
							w.ChargeBoundary()
						}
						for x := 0; x < xn; x++ {
							w.Mul(segs[x], segs[x], tmps[x])
							w.StoreGlobal(segs[x], outs[x], off, count, false)
						}
					}
					continue
				}
				for t := 0; t < g.tiles; t++ {
					off := (t*W + wi) * cfg.WarpSize
					if off >= cols {
						continue
					}
					count := minInt(cfg.WarpSize, cols-off)
					if count < cfg.WarpSize {
						w.ChargeBoundary()
					}
					for x := 0; x < xn; x++ {
						w.LoadGlobal(segs[x], ins[x], off, count, negInf, false)
						w.Sub(segs[x], segs[x], auxs[x])
						w.Exp(segs[x], segs[x])
						w.Mul(segs[x], segs[x], tmps[x])
						w.StoreGlobal(segs[x], outs[x], off, count, false)
					}
				}
			}
		}
	}
	return cudasim.Kernel{
		Name:        name,
		GridBlocks:  g.blocks,
		WarpsPerBlk: g.warps,
		SharedWords: MaxX*g.warps + 2*MaxX,
		Program:     program,
		BytesMoved:  bytes,
	}
}

// --- cuDNN-style generic softmax ---------------------------------------------

// cuDNNWarps is the fixed block width of the generic library kernel.
const cuDNNWarps = 4

// cuDNNIdxOverhead is the per-load generic address-arithmetic cost (cycles):
// the library kernel handles arbitrary N/C/H/W strides with integer div/mod.
const cuDNNIdxOverhead = 8

func softmaxCuDNNKernel(cfg cudasim.Config, p *Problem) cudasim.Kernel {
	cols := p.Cols
	W := cuDNNWarps
	span := W * cfg.WarpSize
	tiles := (cols + span - 1) / span
	// Traffic: read (max), read + write exp (materialised), read exp +
	// write result: 3R + 2W.
	bytes := int64(p.Rows) * int64(cols) * 4 * 5
	program := func(b *cudasim.Block) {
		r := b.Idx()
		if r >= p.Rows {
			return
		}
		in, out := p.rowIn(r), p.rowOut(r)

		// Pass 1: max.
		for wi := 0; wi < W; wi++ {
			w := b.Warp(wi)
			w.Splat(regAcc0, negInf)
			for t := 0; t < tiles; t++ {
				off := (t*W + wi) * cfg.WarpSize
				if off >= cols {
					continue
				}
				count := minInt(cfg.WarpSize, cols-off)
				w.ChargeCycles(cuDNNIdxOverhead)
				w.LoadGlobal(regSeg0, in, off, count, negInf, true)
				w.Max(regAcc0, regAcc0, regSeg0)
			}
			warpReduce(w, opMax, regAcc0, regTmp0)
			w.StoreSharedLane(regAcc0, 0, wi)
		}
		b.Sync()
		w0 := b.Warp(0)
		w0.LoadShared(regAux0, 0, W, negInf)
		warpReduce(w0, opMax, regAux0, regTmp0)
		w0.StoreSharedLane(regAux0, 0, W)
		b.Sync()

		// Pass 2: materialise exp(x-max) into out and accumulate the sum.
		for wi := 0; wi < W; wi++ {
			w := b.Warp(wi)
			w.LoadSharedBroadcast(regAux1, W)
			w.Splat(regAcc0, 0)
			for t := 0; t < tiles; t++ {
				off := (t*W + wi) * cfg.WarpSize
				if off >= cols {
					continue
				}
				count := minInt(cfg.WarpSize, cols-off)
				w.ChargeCycles(cuDNNIdxOverhead)
				w.LoadGlobal(regSeg0, in, off, count, negInf, true)
				w.Sub(regSeg0, regSeg0, regAux1)
				w.Exp(regSeg0, regSeg0)
				w.StoreGlobal(regSeg0, out, off, count, true)
				w.Add(regAcc0, regAcc0, regSeg0)
			}
			warpReduce(w, opSum, regAcc0, regTmp0)
			w.StoreSharedLane(regAcc0, 0, wi)
		}
		b.Sync()
		w0.LoadShared(regAux0, 0, W, 0)
		warpReduce(w0, opSum, regAux0, regTmp0)
		w0.StoreSharedLane(regAux0, 0, W+1)
		b.Sync()

		// Pass 3: reload the materialised exp values and scale.
		for wi := 0; wi < W; wi++ {
			w := b.Warp(wi)
			w.LoadSharedBroadcast(regAux1, W+1)
			w.Rcp(regAux2, regAux1)
			for t := 0; t < tiles; t++ {
				off := (t*W + wi) * cfg.WarpSize
				if off >= cols {
					continue
				}
				count := minInt(cfg.WarpSize, cols-off)
				w.ChargeCycles(cuDNNIdxOverhead)
				w.LoadGlobal(regSeg0, out, off, count, 0, true)
				w.Mul(regSeg0, regSeg0, regAux2)
				w.StoreGlobal(regSeg0, out, off, count, true)
			}
		}
	}
	return cudasim.Kernel{
		Name:        "softmax-cudnn",
		GridBlocks:  p.Rows, // block per row
		WarpsPerBlk: W,
		SharedWords: W + 2,
		Program:     program,
		BytesMoved:  bytes,
		LaunchScale: 0.7, // lean library dispatch vs. the runtimes' graph step
	}
}
