package reduction

import (
	"repro/internal/cudasim"
	"repro/internal/tensor"
)

// Problem is a batch-reduction workload: Rows independent 1-D arrays of
// Cols elements ("reduce a batch of 1-D arrays in parallel", §4.1.2).
// For softmax Rows = batch·heads·seqQ and Cols = seqK; for LayerNorm
// Rows = batch·seq and Cols = hidden.
type Problem struct {
	Rows, Cols int
	In, Out    []float32

	// Gamma and Beta are the LayerNorm affine parameters (length Cols).
	// Softmax kernels ignore them.
	Gamma, Beta []float32

	// availRows is how many distinct rows of In/Out are materialised.
	// Functional runs materialise all of them; timing-only runs materialise
	// just the representative block's share and index modulo availRows.
	availRows int
}

// NewProblem builds a fully-materialised problem from an input tensor of
// Rows×Cols values (functional mode).
func NewProblem(rows, cols int, in []float32) *Problem {
	if len(in) < rows*cols {
		panic("reduction: input shorter than rows*cols")
	}
	return &Problem{
		Rows: rows, Cols: cols,
		In:        in,
		Out:       make([]float32, rows*cols),
		availRows: rows,
	}
}

// NewTimedProblem builds a problem that only materialises materialRows rows
// of seeded random data — enough for the representative block to execute
// functionally while the grid schedule is extrapolated (Device.LaunchTimed).
func NewTimedProblem(rows, cols, materialRows int, seed int64) *Problem {
	if materialRows > rows {
		materialRows = rows
	}
	if materialRows < 1 {
		materialRows = 1
	}
	in := tensor.RandN(seed, 1, materialRows*cols)
	return &Problem{
		Rows: rows, Cols: cols,
		In:        in.Data(),
		Out:       make([]float32, materialRows*cols),
		Gamma:     tensor.RandUniform(seed+1, 0.5, 1.5, cols).Data(),
		Beta:      tensor.RandN(seed+2, 0.1, cols).Data(),
		availRows: materialRows,
	}
}

// WithAffine attaches LayerNorm gamma/beta parameters and returns p.
func (p *Problem) WithAffine(gamma, beta []float32) *Problem {
	if len(gamma) < p.Cols || len(beta) < p.Cols {
		panic("reduction: gamma/beta shorter than Cols")
	}
	p.Gamma, p.Beta = gamma, beta
	return p
}

// rowIn returns the input row for global row index r.
func (p *Problem) rowIn(r int) []float32 {
	r %= p.availRows
	return p.In[r*p.Cols : (r+1)*p.Cols]
}

// rowOut returns the output row for global row index r.
func (p *Problem) rowOut(r int) []float32 {
	r %= p.availRows
	return p.Out[r*p.Cols : (r+1)*p.Cols]
}

// grid describes how a batched-reduction kernel tiles the problem.
type grid struct {
	blocks       int // thread blocks in the launch
	rowsPerBlock int // rows each block processes sequentially
	warps        int // warps per block cooperating on one row
	tiles        int // column tiles of warps*32 covering Cols
}

// gridFor sizes the launch the way the paper describes: split on the batch
// dimension across SMs (blocks), with each block sequentially reducing its
// n rows. Both the baseline and the Turbo kernels use the same launch shape;
// they differ only in the per-block algorithm.
func gridFor(cfg cudasim.Config, rows, cols int) grid {
	concurrent := cfg.NumSMs * cfg.BlocksPerSM
	blocks := rows
	if blocks > concurrent {
		blocks = concurrent
	}
	g := grid{
		blocks:       blocks,
		rowsPerBlock: (rows + blocks - 1) / blocks,
	}
	g.warps = (cols + cfg.WarpSize - 1) / cfg.WarpSize
	if g.warps > cfg.MaxWarpsPerBlock {
		g.warps = cfg.MaxWarpsPerBlock
	}
	if g.warps < 1 {
		g.warps = 1
	}
	span := g.warps * cfg.WarpSize
	g.tiles = (cols + span - 1) / span
	return g
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
