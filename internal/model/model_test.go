package model

import (
	"math"
	"testing"

	"repro/internal/allocator"
	"repro/internal/tensor"
)

// tiny returns a small-but-structural encoder config for CPU tests.
func tiny() Config {
	return BertBase().Scaled(32, 4, 64, 3)
}

func tinyDecoder() Config {
	c := Seq2SeqDecoder().Scaled(32, 4, 64, 2)
	c.MaxTargetLen = 16
	return c
}

func TestConfigsValidate(t *testing.T) {
	for _, c := range AllConfigs() {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestTable3Parameters(t *testing.T) {
	b := BertBase()
	if b.Layers != 12 || b.Heads != 12 || b.Hidden != 768 || b.Inter != 3072 {
		t.Fatalf("BertBase: %+v", b)
	}
	a := Albert()
	if a.Layers != 12 || a.Heads != 64 || a.Hidden != 4096 || a.Inter != 16384 || !a.ShareLayers {
		t.Fatalf("Albert: %+v", a)
	}
	d := DistilBert()
	if d.Layers != 6 || d.Heads != 12 || d.Hidden != 768 {
		t.Fatalf("DistilBert: %+v", d)
	}
	s := Seq2SeqDecoder()
	if s.Layers != 6 || s.Heads != 16 || s.BeamSize != 4 || s.MaxTargetLen != 500 || !s.IsDecoder {
		t.Fatalf("Seq2SeqDecoder: %+v", s)
	}
}

func TestConfigValidationErrors(t *testing.T) {
	bad := Config{Name: "bad", Layers: 1, Hidden: 10, Heads: 3, Inter: 4}
	if bad.Validate() == nil {
		t.Fatal("indivisible hidden/heads should fail")
	}
	dec := Config{Name: "dec", Layers: 1, Hidden: 8, Heads: 2, Inter: 4, IsDecoder: true}
	if dec.Validate() == nil {
		t.Fatal("decoder without beam size should fail")
	}
}

func TestEncoderForwardShapes(t *testing.T) {
	cfg := tiny()
	enc, err := NewEncoder(cfg, 1, allocator.NewTurbo(allocator.NewDevice()), true)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandN(2, 1, 2, 7, cfg.Hidden)
	out, stats, err := enc.Forward(in, []int{7, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !out.SameShape(in) {
		t.Fatalf("output shape %v", out.Shape())
	}
	if stats.FootprintBytes == 0 {
		t.Fatal("stats missing")
	}
	if enc.NumLayers() != cfg.Layers {
		t.Fatalf("layers = %d", enc.NumLayers())
	}
}

func TestEncoderFusedMatchesUnfused(t *testing.T) {
	cfg := tiny()
	fused, err := NewEncoder(cfg, 5, allocator.NewTurbo(allocator.NewDevice()), true)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := NewEncoder(cfg, 5, allocator.NewTurbo(allocator.NewDevice()), false)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandN(9, 1, 1, 11, cfg.Hidden)
	a, _, err := fused.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := unfused.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AllClose(b, 1e-3, 1e-3) {
		t.Fatalf("fused vs unfused stack diverges: %g", a.MaxAbsDiff(b))
	}
}

func TestAlbertSharesWeights(t *testing.T) {
	cfg := tiny()
	cfg.ShareLayers = true
	enc, err := NewEncoder(cfg, 1, allocator.NewTurbo(allocator.NewDevice()), true)
	if err != nil {
		t.Fatal(err)
	}
	// Shared weights: executors must literally alias the same tensors.
	w0 := enc.execs[0].Weights
	w1 := enc.execs[1].Weights
	for id, w := range w0 {
		if w1[id] != w {
			t.Fatal("ALBERT layers must share weight tensors")
		}
	}
}

func TestEncoderRejectsDecoderConfig(t *testing.T) {
	if _, err := NewEncoder(tinyDecoder(), 1, allocator.NewTurbo(allocator.NewDevice()), true); err == nil {
		t.Fatal("expected error")
	}
}

func TestEmbeddingEncode(t *testing.T) {
	cfg := tiny()
	emb := NewEmbedding(cfg, 3)
	hidden, seqLens, err := emb.Encode([][]int{{1, 2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if hidden.Dim(0) != 2 || hidden.Dim(1) != 3 || hidden.Dim(2) != cfg.Hidden {
		t.Fatalf("shape %v", hidden.Shape())
	}
	if seqLens[0] != 3 || seqLens[1] != 2 {
		t.Fatalf("seqLens %v", seqLens)
	}
	// Padding row (batch 1, pos 2) must be zero.
	pad := hidden.Data()[(1*3+2)*cfg.Hidden : (1*3+2)*cfg.Hidden+cfg.Hidden]
	for _, v := range pad {
		if v != 0 {
			t.Fatal("padding row not zero")
		}
	}
}

func TestEmbeddingPositionsDiffer(t *testing.T) {
	cfg := tiny()
	emb := NewEmbedding(cfg, 3)
	h, _, err := emb.Encode([][]int{{7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	r0 := tensor.FromSlice(h.Data()[:cfg.Hidden], cfg.Hidden)
	r1 := tensor.FromSlice(h.Data()[cfg.Hidden:2*cfg.Hidden], cfg.Hidden)
	if r0.MaxAbsDiff(r1) == 0 {
		t.Fatal("same token at different positions must embed differently")
	}
}

func TestEmbeddingErrors(t *testing.T) {
	emb := NewEmbedding(tiny(), 1)
	if _, _, err := emb.Encode(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if _, _, err := emb.Encode([][]int{{}}); err == nil {
		t.Fatal("empty sequences should fail")
	}
	if _, _, err := emb.Encode([][]int{{99999}}); err == nil {
		t.Fatal("out-of-vocab token should fail")
	}
}

func TestClassifierPredict(t *testing.T) {
	cfg := tiny()
	cls := NewClassifier(cfg.Hidden, 4, 7)
	hidden := tensor.RandN(5, 1, 3, 6, cfg.Hidden)
	preds, err := cls.Predict(hidden)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("preds %v", preds)
	}
	for _, p := range preds {
		if p < 0 || p >= 4 {
			t.Fatalf("class out of range: %d", p)
		}
	}
	// Deterministic.
	again, _ := cls.Predict(hidden)
	for i := range preds {
		if preds[i] != again[i] {
			t.Fatal("prediction not deterministic")
		}
	}
}

func TestClassifierShapeError(t *testing.T) {
	cls := NewClassifier(32, 2, 1)
	if _, err := cls.Logits(tensor.New(3, 16)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDecoderGreedyDeterministic(t *testing.T) {
	cfg := tinyDecoder()
	dec, err := NewDecoder(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	memory := tensor.RandN(3, 0.5, 5, cfg.Hidden)
	a, err := dec.Greedy(memory, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dec.Greedy(memory, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tokens) != len(b.Tokens) {
		t.Fatal("greedy decode not deterministic")
	}
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatal("greedy decode not deterministic")
		}
	}
	if len(a.Tokens) == 0 || len(a.Tokens) > 8 {
		t.Fatalf("token count %d", len(a.Tokens))
	}
}

func TestBeamSearchBeatsGreedy(t *testing.T) {
	cfg := tinyDecoder()
	dec, err := NewDecoder(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	memory := tensor.RandN(5, 0.5, 6, cfg.Hidden)
	greedy, err := dec.Greedy(memory, 10)
	if err != nil {
		t.Fatal(err)
	}
	hyps, err := dec.BeamSearch(memory, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hyps) == 0 || len(hyps) > cfg.BeamSize {
		t.Fatalf("hypothesis count %d", len(hyps))
	}
	// Beam search explores a superset of greedy's path: its best score can
	// never be worse.
	if hyps[0].Score < greedy.Score-1e-9 {
		t.Fatalf("beam best %.6f worse than greedy %.6f", hyps[0].Score, greedy.Score)
	}
	// Sorted best-first.
	for i := 1; i < len(hyps); i++ {
		if hyps[i].Score > hyps[i-1].Score {
			t.Fatal("hypotheses not sorted")
		}
	}
}

func TestBeamSearchDifferentMemoriesDiffer(t *testing.T) {
	cfg := tinyDecoder()
	dec, err := NewDecoder(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := dec.BeamSearch(tensor.RandN(1, 0.5, 4, cfg.Hidden), 8)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := dec.BeamSearch(tensor.RandN(2, 0.5, 4, cfg.Hidden), 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1[0].Score-h2[0].Score) < 1e-12 {
		t.Fatal("different memories should produce different decodes (suspicious tie)")
	}
}

func TestDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(tiny(), 1); err == nil {
		t.Fatal("encoder config should be rejected")
	}
	dec, err := NewDecoder(tinyDecoder(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.BeamSearch(tensor.New(4, 7), 4); err == nil {
		t.Fatal("bad memory shape should be rejected")
	}
}

func TestTopK(t *testing.T) {
	vals := []float32{1, 9, 3, 7, 5}
	idx := topK(vals, 3)
	want := []int{1, 3, 4}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("topK = %v", idx)
		}
	}
	if len(topK(vals, 10)) != 5 {
		t.Fatal("topK must clamp k")
	}
}

func TestLengthPenaltyMonotone(t *testing.T) {
	if lengthPenalty(1) >= lengthPenalty(10) {
		t.Fatal("length penalty must grow with length")
	}
}

func TestScaled(t *testing.T) {
	s := Albert().Scaled(64, 4, 128, 2)
	if s.Hidden != 64 || s.Layers != 2 || !s.ShareLayers {
		t.Fatalf("scaled: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
