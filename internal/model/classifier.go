package model

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Classifier is the BERT-style sequence-classification head used by the
// serving experiments' target application ("a BERT-based service ... used
// to classify a paragraph of text", §6.3): pool the [CLS] position through
// a tanh dense layer, then project to class logits.
type Classifier struct {
	Hidden  int
	Classes int
	PoolW   *tensor.Tensor // [hidden, hidden]
	PoolB   *tensor.Tensor // [hidden]
	OutW    *tensor.Tensor // [hidden, classes]
	OutB    *tensor.Tensor // [classes]
}

// NewClassifier builds a deterministic random classification head.
func NewClassifier(hidden, classes int, seed int64) *Classifier {
	return &Classifier{
		Hidden:  hidden,
		Classes: classes,
		PoolW:   tensor.RandN(seed, 0.05, hidden, hidden),
		PoolB:   tensor.RandN(seed+1, 0.02, hidden),
		OutW:    tensor.RandN(seed+2, 0.05, hidden, classes),
		OutB:    tensor.RandN(seed+3, 0.02, classes),
	}
}

// Logits pools position 0 of each sequence in hidden [batch, seq, hidden]
// and returns class logits [batch, classes].
func (c *Classifier) Logits(hidden *tensor.Tensor) (*tensor.Tensor, error) {
	if hidden.Rank() != 3 || hidden.Dim(2) != c.Hidden {
		return nil, fmt.Errorf("model: classifier input shape %v, want [batch, seq, %d]",
			hidden.Shape(), c.Hidden)
	}
	batch, seq := hidden.Dim(0), hidden.Dim(1)
	cls := tensor.New(batch, c.Hidden)
	for b := 0; b < batch; b++ {
		copy(cls.Data()[b*c.Hidden:(b+1)*c.Hidden], hidden.Data()[b*seq*c.Hidden:b*seq*c.Hidden+c.Hidden])
	}
	return c.logitsFromCLS(cls)
}

// LogitsPacked pools each request's [CLS] row out of a packed batch
// (request i's first row sits at Offset(i) — no stride arithmetic over a
// padded maxLen) and returns class logits [batch, classes]. The head's
// GEMMs are row-wise, so the result is bit-identical to Logits on the
// padded layout.
func (c *Classifier) LogitsPacked(hidden *tensor.Packed) (*tensor.Tensor, error) {
	if hidden.Cols() != c.Hidden {
		return nil, fmt.Errorf("model: packed classifier input width %d, want %d",
			hidden.Cols(), c.Hidden)
	}
	batch := hidden.Batch()
	cls := tensor.New(batch, c.Hidden)
	for b := 0; b < batch; b++ {
		src := hidden.Data().Data()[hidden.Offset(b)*c.Hidden : (hidden.Offset(b)+1)*c.Hidden]
		copy(cls.Data()[b*c.Hidden:(b+1)*c.Hidden], src)
	}
	return c.logitsFromCLS(cls)
}

// logitsFromCLS runs the pooled [batch, hidden] CLS rows through the tanh
// dense layer and the output projection.
func (c *Classifier) logitsFromCLS(cls *tensor.Tensor) (*tensor.Tensor, error) {
	batch := cls.Dim(0)
	pooled := tensor.New(batch, c.Hidden)
	blas.Gemm(false, false, batch, c.Hidden, c.Hidden, 1,
		cls.Data(), c.Hidden, c.PoolW.Data(), c.Hidden, 0, pooled.Data(), c.Hidden)
	kernels.AddBiasAct(kernels.ActTanh, pooled.Data(), c.PoolB.Data(), batch, c.Hidden)

	logits := tensor.New(batch, c.Classes)
	blas.Gemm(false, false, batch, c.Classes, c.Hidden, 1,
		pooled.Data(), c.Hidden, c.OutW.Data(), c.Classes, 0, logits.Data(), c.Classes)
	kernels.AddBias(logits.Data(), c.OutB.Data(), batch, c.Classes)
	return logits, nil
}

// Predict returns the argmax class per request.
func (c *Classifier) Predict(hidden *tensor.Tensor) ([]int, error) {
	logits, err := c.Logits(hidden)
	if err != nil {
		return nil, err
	}
	return argmaxRows(logits, c.Classes), nil
}

// PredictPacked returns the argmax class per request of a packed batch.
func (c *Classifier) PredictPacked(hidden *tensor.Packed) ([]int, error) {
	logits, err := c.LogitsPacked(hidden)
	if err != nil {
		return nil, err
	}
	return argmaxRows(logits, c.Classes), nil
}

func argmaxRows(logits *tensor.Tensor, classes int) []int {
	batch := logits.Dim(0)
	out := make([]int, batch)
	for b := 0; b < batch; b++ {
		row := logits.Data()[b*classes : (b+1)*classes]
		best := 0
		for i, v := range row {
			if v > row[best] {
				best = i
			}
		}
		out[b] = best
	}
	return out
}
