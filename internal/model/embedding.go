package model

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Embedding maps token IDs to hidden states: word embedding plus sinusoidal
// position encoding, followed by LayerNorm (the BERT input pipeline with the
// learned position table replaced by the original transformer's sinusoids so
// no extra state is needed for arbitrary lengths).
type Embedding struct {
	Hidden int
	Vocab  int
	Word   *tensor.Tensor // [vocab, hidden]
	Gamma  *tensor.Tensor // [hidden]
	Beta   *tensor.Tensor // [hidden]
}

// NewEmbedding builds a deterministic random embedding table.
func NewEmbedding(cfg Config, seed int64) *Embedding {
	return &Embedding{
		Hidden: cfg.Hidden,
		Vocab:  cfg.Vocab,
		Word:   tensor.RandN(seed, 0.05, cfg.Vocab, cfg.Hidden),
		Gamma:  tensor.RandUniform(seed+1, 0.9, 1.1, cfg.Hidden),
		Beta:   tensor.RandN(seed+2, 0.02, cfg.Hidden),
	}
}

// positionEncoding returns the sinusoidal position vector for position pos.
func positionEncoding(pos, hidden int, out []float32) {
	for i := 0; i < hidden; i += 2 {
		freq := math.Pow(10000, -float64(i)/float64(hidden))
		angle := float64(pos) * freq
		out[i] = float32(math.Sin(angle))
		if i+1 < hidden {
			out[i+1] = float32(math.Cos(angle))
		}
	}
}

// Encode embeds a padded batch of token ID sequences into
// [batch, maxLen, hidden]. Sequences shorter than maxLen are zero-padded.
func (e *Embedding) Encode(batchTokens [][]int) (*tensor.Tensor, []int, error) {
	batch := len(batchTokens)
	if batch == 0 {
		return nil, nil, fmt.Errorf("model: empty batch")
	}
	maxLen := 0
	seqLens := make([]int, batch)
	for i, toks := range batchTokens {
		seqLens[i] = len(toks)
		if len(toks) > maxLen {
			maxLen = len(toks)
		}
	}
	if maxLen == 0 {
		return nil, nil, fmt.Errorf("model: all sequences empty")
	}
	out := tensor.New(batch, maxLen, e.Hidden)
	pos := make([]float32, e.Hidden)
	for b, toks := range batchTokens {
		for s, tok := range toks {
			if tok < 0 || tok >= e.Vocab {
				return nil, nil, fmt.Errorf("model: token %d outside vocab [0,%d)", tok, e.Vocab)
			}
			row := out.Data()[(b*maxLen+s)*e.Hidden : (b*maxLen+s+1)*e.Hidden]
			copy(row, e.Word.Data()[tok*e.Hidden:(tok+1)*e.Hidden])
			positionEncoding(s, e.Hidden, pos)
			for i := range row {
				row[i] += pos[i]
			}
		}
	}
	// Normalise valid rows only; padding rows stay exactly zero so the
	// attention mask is the single source of truth for request length.
	for b, n := range seqLens {
		row := out.Data()[b*maxLen*e.Hidden : (b*maxLen+n)*e.Hidden]
		kernels.LayerNorm(row, e.Gamma.Data(), e.Beta.Data(), n, e.Hidden, 1e-5)
	}
	return out, seqLens, nil
}

// EncodePacked embeds a batch of token ID sequences into the zero-padding
// layout: requests laid out back-to-back as [totalTokens, hidden]. No
// padding row is ever written, so downstream kernels need no length mask.
// Every sequence must be non-empty — a ragged batch has no padding row for
// an empty request to hide behind.
func (e *Embedding) EncodePacked(batchTokens [][]int) (*tensor.Packed, error) {
	if len(batchTokens) == 0 {
		return nil, fmt.Errorf("model: empty batch")
	}
	seqLens := make([]int, len(batchTokens))
	for i, toks := range batchTokens {
		if len(toks) == 0 {
			return nil, fmt.Errorf("model: packed request %d is empty", i)
		}
		seqLens[i] = len(toks)
	}
	out := tensor.NewPacked(seqLens, e.Hidden)
	pos := make([]float32, e.Hidden)
	for b, toks := range batchTokens {
		base := out.Offset(b)
		for s, tok := range toks {
			if tok < 0 || tok >= e.Vocab {
				return nil, fmt.Errorf("model: token %d outside vocab [0,%d)", tok, e.Vocab)
			}
			row := out.Data().Data()[(base+s)*e.Hidden : (base+s+1)*e.Hidden]
			copy(row, e.Word.Data()[tok*e.Hidden:(tok+1)*e.Hidden])
			positionEncoding(s, e.Hidden, pos)
			for i := range row {
				row[i] += pos[i]
			}
		}
	}
	// One LayerNorm over all real rows — bit-identical to the padded path's
	// per-request normalisation because the kernel is row-wise.
	kernels.LayerNorm(out.Data().Data(), e.Gamma.Data(), e.Beta.Data(),
		out.TotalTokens(), e.Hidden, 1e-5)
	return out, nil
}
