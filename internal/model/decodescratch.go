package model

import (
	"sync"

	"repro/internal/allocator"
	"repro/internal/blas"
	"repro/internal/kernels"
)

// decodeScratchRowChunk is the row-capacity planning granularity of the
// decode workspace (batch slots); the score region's context capacity
// follows the KV cache's own growth policy (roundUpTokens: 1.2× headroom,
// chunk-rounded), so a plan survives many iterations of steady context
// growth instead of reallocating every step.
const decodeScratchRowChunk = 4

// decodeScratch is the decode-iteration workspace shared by Generator.Step
// and Decoder.stepAll: activations, attention scores, and logits for one
// ragged decode iteration, carved out of a single device-accounted buffer.
// Like the encoder's activation arena, the plan is keyed on the iteration
// shape — (rows, Σcontext) — and reused as long as the request fits, so
// decode activations show up in MemoryStats (and its reallocation traffic
// in the Malloc/Free counters) exactly like encoder activations do, and the
// decode loop stops allocating per-token activation buffers (a few small
// descriptor/score-row allocations remain on the oracle and blas paths).
//
// The mutex serialises the decode paths sharing the workspace (Generator
// iterations and BeamSearch positions on the same decoder); buffers handed
// out by plan() are valid until the next plan() call.
type decodeScratch struct {
	mu  sync.Mutex
	dev *allocator.Device
	buf *allocator.Buffer

	planRows int // row capacity of the current plan
	planCtx  int // Σcontext capacity of the score region

	// Regions of buf, carved at plan capacity; callers slice to their rows.
	x, q, k, v, ctx, proj []float32 // [planRows, hidden] each
	inter                 []float32 // [planRows, inter]
	logits                []float32 // [planRows, vocab]
	scores                []float32 // [heads, planCtx] concatenated ragged rows
	pe                    []float32 // [hidden] position-encoding row

	// Host-side per-session gather lists for the grouped attention call
	// (pointers into KV caches, not device data) — reused across steps and
	// cleared at the end of every iteration so an idle generator does not
	// pin closed sessions' cache arrays.
	keys, vals [][]float32
	lens       []int

	// Paged-mode gather: all sessions' K/V blocks flattened (flatKB/flatVB),
	// per-session block counts, and the per-session sub-slices handed to the
	// blocked kernels. Same reuse-and-clear discipline as keys/vals.
	flatKB, flatVB [][]float32
	blkCounts      []int
	kb, vb         [][][]float32

	// fp16-route gather lists: the binary16 twins of keys/vals and the
	// flattened block tables, plus xh, the activation-encode scratch the
	// batched fp16 projections round through.
	keysH, valsH     []blas.Half
	flatKBH, flatVBH []blas.Half
	kbh, vbh         [][]blas.Half
	xh               blas.Half

	// ws caches the grouped-GEMM descriptors the decode kernels build.
	ws kernels.DecodeWorkspace
}

func newDecodeScratch(dev *allocator.Device) *decodeScratch {
	if dev == nil {
		dev = allocator.NewDevice()
	}
	return &decodeScratch{dev: dev}
}

// roundUpChunk rounds n up to the chunk granularity.
func roundUpChunk(n, chunk int) int {
	if n < 1 {
		n = 1
	}
	return (n + chunk - 1) / chunk * chunk
}

// plan ensures the workspace covers a decode iteration of `rows` sessions
// whose attention score rows span at most sumCtx context tokens, replanning
// (one device Free+Malloc, visible in the traffic counters) only when the
// key outgrows the current plan. Must be called with mu held.
func (s *decodeScratch) plan(cfg *Config, rows, sumCtx int) {
	if s.buf != nil && rows <= s.planRows && sumCtx <= s.planCtx {
		return
	}
	pr := roundUpChunk(rows, decodeScratchRowChunk)
	// Headroom past the requested Σcontext: self-attention context grows by
	// `rows` tokens per iteration, so the KV cache's growth policy (20%
	// slack, chunk-rounded) keeps replans logarithmically spaced too.
	pc := roundUpTokens(sumCtx)
	if pr < s.planRows {
		pr = s.planRows
	}
	if pc < s.planCtx {
		pc = s.planCtx
	}
	h, inter, vocab, heads := cfg.Hidden, cfg.Inter, cfg.Vocab, cfg.Heads
	floats := pr*h*6 + pr*inter + pr*vocab + heads*pc + h
	if s.buf != nil {
		s.dev.Free(s.buf)
	}
	s.buf = s.dev.Malloc(int64(floats) * 4)
	data := s.buf.Data()
	carve := func(n int) []float32 {
		out := data[:n]
		data = data[n:]
		return out
	}
	s.x, s.q, s.k, s.v = carve(pr*h), carve(pr*h), carve(pr*h), carve(pr*h)
	s.ctx, s.proj = carve(pr*h), carve(pr*h)
	s.inter = carve(pr * inter)
	s.logits = carve(pr * vocab)
	s.scores = carve(heads * pc)
	s.pe = carve(h)
	s.planRows, s.planCtx = pr, pc
}

// bytes returns the workspace's current device footprint.
func (s *decodeScratch) bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buf == nil {
		return 0
	}
	return s.buf.Size
}

// gather resets and returns the per-session gather lists, reusing their
// backing arrays.
func (s *decodeScratch) gather() ([][]float32, [][]float32, []int) {
	s.clearGather()
	return s.keys, s.vals, s.lens
}

// gatherBlocked resets and returns the paged-mode gather lists (flattened
// block slices, per-session counts, context lengths), reusing their backing
// arrays.
func (s *decodeScratch) gatherBlocked() ([][]float32, [][]float32, []int, []int) {
	s.clearGather()
	return s.flatKB, s.flatVB, s.blkCounts, s.lens
}

// gatherF16 is gather for the binary16 route.
func (s *decodeScratch) gatherF16() ([]blas.Half, []blas.Half, []int) {
	s.clearGather()
	return s.keysH, s.valsH, s.lens
}

// gatherBlockedF16 is gatherBlocked for the binary16 route.
func (s *decodeScratch) gatherBlockedF16() ([]blas.Half, []blas.Half, []int, []int) {
	s.clearGather()
	return s.flatKBH, s.flatVBH, s.blkCounts, s.lens
}

// halfIn returns the activation-encode scratch sized for n elements,
// growing it as needed. Must be called with mu held; the slice is valid
// until the next halfIn call.
func (s *decodeScratch) halfIn(n int) blas.Half {
	if cap(s.xh) < n {
		s.xh = make(blas.Half, n)
	}
	return s.xh[:n]
}

// clearGather drops the KV references collected during an iteration
// (truncating alone would leave stale slice headers alive in the backing
// array, keeping freed sessions' K/V storage reachable). Called with mu
// held.
func (s *decodeScratch) clearGather() {
	clearRows := func(v [][]float32) [][]float32 {
		full := v[:cap(v)]
		for i := range full {
			full[i] = nil
		}
		return v[:0]
	}
	s.keys, s.vals = clearRows(s.keys), clearRows(s.vals)
	s.flatKB, s.flatVB = clearRows(s.flatKB), clearRows(s.flatVB)
	for _, v := range [2][][][]float32{s.kb[:cap(s.kb)], s.vb[:cap(s.vb)]} {
		for i := range v {
			v[i] = nil
		}
	}
	s.kb, s.vb = s.kb[:0], s.vb[:0]
	clearHalves := func(v []blas.Half) []blas.Half {
		full := v[:cap(v)]
		for i := range full {
			full[i] = nil
		}
		return v[:0]
	}
	s.keysH, s.valsH = clearHalves(s.keysH), clearHalves(s.valsH)
	s.flatKBH, s.flatVBH = clearHalves(s.flatKBH), clearHalves(s.flatVBH)
	for _, v := range [2][][]blas.Half{s.kbh[:cap(s.kbh)], s.vbh[:cap(s.vbh)]} {
		for i := range v {
			v[i] = nil
		}
	}
	s.kbh, s.vbh = s.kbh[:0], s.vbh[:0]
	s.lens, s.blkCounts = s.lens[:0], s.blkCounts[:0]
}
