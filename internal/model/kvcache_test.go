package model

import (
	"strings"
	"testing"

	"repro/internal/allocator"
)

// TestKVCacheReservationMatchesGrant pins the one-ledger reconciliation:
// the device's KV-reserved gauge must equal the admission grant exactly —
// the same figure the continuous scheduler budgets in tokens — never the
// headroom-scaled, chunk-rounded buffer capacity. Before the fix a
// 2048-token grant reserved roundUpTokens(2048) = 2464 tokens' bytes on
// the device, so gen_kv_reserved_bytes exceeded what admission granted.
func TestKVCacheReservationMatchesGrant(t *testing.T) {
	const layers, hidden = 3, 16
	perTok := int64(layers) * 2 * hidden * 4
	for _, grant := range []int{1, 5, KVChunkTokens, KVChunkTokens + 1, 2048} {
		dev := allocator.NewDevice()
		c, err := NewKVCache(dev, layers, hidden, grant)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := dev.Snapshot().KVReservedBytes, int64(grant)*perTok; got != want {
			t.Fatalf("grant %d: device reserved %d bytes, admission granted %d", grant, got, want)
		}
		if got, want := c.ReservedBytes(), int64(grant)*perTok; got != want {
			t.Fatalf("grant %d: ReservedBytes %d, want %d", grant, got, want)
		}
		c.Free()
		if snap := dev.Snapshot(); snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
			t.Fatalf("grant %d: gauges not zero after Free: %+v", grant, snap)
		}
	}
}

// TestKVCacheMidStepFreeZeroesGauges pins the eviction-between-AppendRow-
// and-Advance path (mid-step cancel or deadline): a row appended to every
// layer but never committed must not leak into either KV gauge when the
// cache is freed.
func TestKVCacheMidStepFreeZeroesGauges(t *testing.T) {
	const layers, hidden = 2, 8
	dev := allocator.NewDevice()
	c, err := NewKVCache(dev, layers, hidden, 6)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float32, hidden)
	// Two committed tokens, then a third appended but NOT advanced — the
	// state a mid-step eviction sees.
	for tok := 0; tok < 2; tok++ {
		for l := 0; l < layers; l++ {
			c.AppendRow(l, row, row)
		}
		c.Advance()
	}
	for l := 0; l < layers; l++ {
		c.AppendRow(l, row, row)
	}
	c.Free()
	c.Free() // idempotent
	snap := dev.Snapshot()
	if snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
		t.Fatalf("mid-step free left gauges non-zero: reserved=%d used=%d",
			snap.KVReservedBytes, snap.KVUsedBytes)
	}
	if snap.LiveBytes != 0 {
		t.Fatalf("mid-step free left %d device bytes live", snap.LiveBytes)
	}
}

// TestKVCacheRejectsOversizeGrant pins the adversarial-size fix: an
// expectTokens past the device budget must come back as an error from
// NewKVCache, never as an overflowed (negative) Malloc panic.
func TestKVCacheRejectsOversizeGrant(t *testing.T) {
	dev := allocator.NewDevice()
	for _, grant := range []int{maxKVTokens + 1, int(^uint(0) >> 1)} {
		c, err := NewKVCache(dev, 2, 8, grant)
		if err == nil {
			c.Free()
			t.Fatalf("grant %d: want error, got cache", grant)
		}
		if !strings.Contains(err.Error(), "budget") {
			t.Fatalf("grant %d: unexpected error %v", grant, err)
		}
	}
	// Gauges and live bytes untouched by the rejected construction.
	if snap := dev.Snapshot(); snap.LiveBytes != 0 || snap.KVReservedBytes != 0 {
		t.Fatalf("rejected grant leaked device state: %+v", snap)
	}
}

// TestRoundUpTokensClampAndPolicy: the growth policy keeps its 1.2×,
// chunk-rounded shape at normal sizes and clamps instead of overflowing at
// adversarial ones.
func TestRoundUpTokensClampAndPolicy(t *testing.T) {
	cases := []struct{ need, want int }{
		{0, KVChunkTokens},
		{1, KVChunkTokens},
		{10, KVChunkTokens},
		{KVChunkTokens, 2 * KVChunkTokens}, // 32×1.2 = 38.4 → 64
		{100, 4 * KVChunkTokens},           // 120 → 128
		{maxKVTokens, maxKVTokens},         // at the cap: no headroom, no overflow
		{maxKVTokens + 7, maxKVTokens + 7}, // past the cap: identity (constructor rejects)
	}
	for _, tc := range cases {
		if got := roundUpTokens(tc.need); got != tc.want {
			t.Fatalf("roundUpTokens(%d) = %d, want %d", tc.need, got, tc.want)
		}
	}
	// Monotone and never below need, across a sweep.
	prev := 0
	for need := 1; need < 4*KVChunkTokens; need++ {
		got := roundUpTokens(need)
		if got < need || got%KVChunkTokens != 0 || got < prev {
			t.Fatalf("roundUpTokens(%d) = %d violates policy", need, got)
		}
		prev = got
	}
}
