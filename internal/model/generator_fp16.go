package model

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// stepF16 is Step on the binary16 fast path. The structure mirrors Step
// exactly — same iteration shape, same scratch plan, same 4-way attention
// dispatch — but every projection runs as a GemmF16 (activations rounded
// through binary16 into pooled scratch, weights pre-encoded by EnableFP16),
// attention reads the binary16 KV storage through the fused fp16 kernel
// chains (scale folded into the score GEMM, probabilities cast in the
// softmax pass), and the per-row oracle is attendF16/attendBlockedF16.
// Token streams are bit-identical across the four dispatch arms, like the
// fp32 quartet — the property tests pin it.
func (g *Generator) stepF16(sessions []*GenSession) ([]int, error) {
	rows := len(sessions)
	if rows == 0 {
		return nil, nil
	}
	paged := sessions[0].pkv != nil
	sumSelf, sumCross := 0, 0
	for _, s := range sessions {
		if s.done {
			return nil, fmt.Errorf("model %s: session %d already done", g.Cfg.Name, s.ID)
		}
		if s.kv == nil && s.pkv == nil {
			return nil, fmt.Errorf("model %s: session %d closed", g.Cfg.Name, s.ID)
		}
		if (s.pkv != nil) != paged {
			return nil, fmt.Errorf("model %s: mixed paged and contiguous sessions in one batch", g.Cfg.Name)
		}
		if !s.cc.half || (s.kv != nil && !s.kv.Half()) || (s.pkv != nil && !s.pkv.Half()) {
			return nil, fmt.Errorf("model %s: session %d opened before EnableFP16", g.Cfg.Name, s.ID)
		}
		sumSelf += s.ContextLen() + 1
		sumCross += s.cc.srcLen
	}
	if paged {
		for _, s := range sessions {
			if !s.pkv.EnsureAppendable() {
				return nil, ErrKVPoolExhausted
			}
		}
	}
	maxCtx := sumSelf
	if sumCross > maxCtx {
		maxCtx = sumCross
	}
	d := g.dec
	h, inter, vocab, heads := g.Cfg.Hidden, g.Cfg.Inter, g.Cfg.Vocab, g.Cfg.Heads
	hd := h / heads
	scale := float32(1 / math.Sqrt(float64(hd)))

	scr := d.scr
	scr.mu.Lock()
	defer scr.mu.Unlock()
	defer scr.clearGather()
	scr.plan(&g.Cfg, rows, maxCtx)
	x := scr.x[:rows*h]
	q := scr.q[:rows*h]
	kNew := scr.k[:rows*h]
	vNew := scr.v[:rows*h]
	ctx := scr.ctx[:rows*h]
	proj := scr.proj[:rows*h]
	interBuf := scr.inter[:rows*inter]

	pe := scr.pe
	for ri, s := range sessions {
		row := x[ri*h : (ri+1)*h]
		copy(row, d.Embed.Word.Data()[s.next*h:(s.next+1)*h])
		positionEncoding(s.pos, h, pe)
		for i := range row {
			row[i] += pe[i]
		}
	}
	kernels.LayerNorm(x, d.Embed.Gamma.Data(), d.Embed.Beta.Data(), rows, h, 1e-5)

	// batchedLinear on the fp16 route: the input rounds through binary16
	// into the workspace's encode scratch (the Tensor Core load conversion),
	// the weight comes pre-encoded from EnableFP16, accumulation is fp32.
	batchedLinear := func(in []float32, w, b *tensor.Tensor, out []float32) {
		wk, wn := w.Dim(0), w.Dim(1)
		xh := scr.halfIn(rows * wk)
		tensor.EncodeF16Slice(xh, in[:rows*wk])
		blas.GemmF16(false, false, rows, wn, wk, 1, xh, wk, d.halfW[w], wn, 0, out, wn)
		if b != nil {
			kernels.AddBias(out, b.Data(), rows, wn)
		}
	}

	for l := range d.layers {
		lw := &d.layers[l]

		// Self-attention over the binary16 cache. AppendRow performs the
		// store-side cast; the kernels read the halves back through the
		// mixed-operand GEMMs.
		batchedLinear(x, lw.selfWq, lw.selfBq, q)
		batchedLinear(x, lw.selfWk, lw.selfBk, kNew)
		batchedLinear(x, lw.selfWv, lw.selfBv, vNew)
		switch {
		case g.PerRowAttention && paged:
			for ri, s := range sessions {
				s.pkv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.pkv.Len() + 1
				d.attendBlockedF16(q[ri*h:(ri+1)*h],
					s.pkv.KBlocksH(nil, l, T), s.pkv.VBlocksH(nil, l, T),
					T, s.pkv.BlockTokens(), ctx[ri*h:(ri+1)*h])
			}
		case g.PerRowAttention:
			for ri, s := range sessions {
				s.kv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.kv.Len() + 1
				d.attendF16(q[ri*h:(ri+1)*h], s.kv.KH(l, T), s.kv.VH(l, T), T, ctx[ri*h:(ri+1)*h])
			}
		case paged:
			flatK, flatV, counts, lens := scr.gatherBlockedF16()
			for ri, s := range sessions {
				s.pkv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.pkv.Len() + 1
				before := len(flatK)
				flatK = s.pkv.KBlocksH(flatK, l, T)
				flatV = s.pkv.VBlocksH(flatV, l, T)
				counts = append(counts, len(flatK)-before)
				lens = append(lens, T)
			}
			kb, vb := scr.kbh[:0], scr.vbh[:0]
			off := 0
			for _, n := range counts {
				kb = append(kb, flatK[off:off+n])
				vb = append(vb, flatV[off:off+n])
				off += n
			}
			scr.flatKBH, scr.flatVBH, scr.blkCounts, scr.lens = flatK, flatV, counts, lens
			scr.kbh, scr.vbh = kb, vb
			scr.ws.AttentionBlockedF16(q, kb, vb, lens, sessions[0].pkv.BlockTokens(),
				heads, hd, scale, scr.scores[:heads*sumSelf], ctx)
			g.fusedLaunches.Add(1)
		default:
			keys, vals, lens := scr.gatherF16()
			for ri, s := range sessions {
				s.kv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.kv.Len() + 1
				keys = append(keys, s.kv.KH(l, T))
				vals = append(vals, s.kv.VH(l, T))
				lens = append(lens, T)
			}
			scr.keysH, scr.valsH, scr.lens = keys, vals, lens
			scr.ws.AttentionF16(q, keys, vals, lens, heads, hd, scale, scr.scores[:heads*sumSelf], ctx)
			g.fusedLaunches.Add(1)
		}
		batchedLinear(ctx, lw.selfWo, lw.selfBo, proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.selfLnG.Data(), lw.selfLnB.Data(), rows, h, 1e-5)

		// Cross-attention against each session's binary16 prompt memory.
		batchedLinear(x, lw.crossWq, lw.crossBq, q)
		if g.PerRowAttention {
			for ri, s := range sessions {
				d.attendF16(q[ri*h:(ri+1)*h], s.cc.kh[l], s.cc.vh[l], s.cc.srcLen, ctx[ri*h:(ri+1)*h])
			}
		} else {
			keys, vals, lens := scr.gatherF16()
			for _, s := range sessions {
				keys = append(keys, s.cc.kh[l])
				vals = append(vals, s.cc.vh[l])
				lens = append(lens, s.cc.srcLen)
			}
			scr.keysH, scr.valsH, scr.lens = keys, vals, lens
			scr.ws.AttentionF16(q, keys, vals, lens, heads, hd, scale, scr.scores[:heads*sumCross], ctx)
			g.fusedLaunches.Add(1)
		}
		batchedLinear(ctx, lw.crossWo, lw.crossBo, proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.crossLnG.Data(), lw.crossLnB.Data(), rows, h, 1e-5)

		// Feed-forward network, batched.
		batchedLinear(x, lw.ffnW1, lw.ffnB1, interBuf)
		kernels.Act(g.Cfg.Act, interBuf)
		batchedLinear(interBuf, lw.ffnW2, lw.ffnB2, proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.ffnLnG.Data(), lw.ffnLnB.Data(), rows, h, 1e-5)
	}

	// Vocabulary projection and greedy argmax per session.
	logits := scr.logits[:rows*vocab]
	batchedLinear(x, d.Proj, nil, logits)
	out := make([]int, rows)
	for ri, s := range sessions {
		tok := argmax(logits[ri*vocab : (ri+1)*vocab])
		out[ri] = tok
		s.toks = append(s.toks, tok)
		if s.pkv != nil {
			s.pkv.Advance()
		} else {
			s.kv.Advance()
		}
		s.pos++
		s.next = tok
		if tok == TokEos || len(s.toks) >= s.maxNew {
			s.done = true
		}
	}
	return out, nil
}
