package model

import (
	"testing"

	"repro/internal/allocator"
	"repro/internal/tensor"
)

func genTestConfig() Config {
	cfg := Seq2SeqDecoder()
	cfg.Hidden, cfg.Heads, cfg.Inter, cfg.Layers = 32, 4, 64, 2
	cfg.Vocab = 64
	cfg.MaxTargetLen = 32
	return cfg
}

func testMemory(seed int64, srcLen, hidden int) *tensor.Tensor {
	return tensor.RandN(seed, 0.3, srcLen, hidden)
}

// drain runs a single session to completion and returns its tokens.
func drain(t *testing.T, g *Generator, sess *GenSession) []int {
	t.Helper()
	for !sess.Done() {
		if _, err := g.Step([]*GenSession{sess}); err != nil {
			t.Fatal(err)
		}
	}
	return append([]int(nil), sess.Generated()...)
}

// TestGeneratorMatchesGreedy: the iteration-level path must produce the
// same token stream as the one-shot beam-1 decoder over the same weights.
func TestGeneratorMatchesGreedy(t *testing.T) {
	cfg := genTestConfig()
	g, err := NewGenerator(cfg, 42, allocator.NewDevice())
	if err != nil {
		t.Fatal(err)
	}
	mem := testMemory(7, 9, cfg.Hidden)

	sess, err := g.NewSession(1, mem, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got := drain(t, g, sess)

	hyp, err := g.Decoder().Greedy(mem, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no tokens generated")
	}
	if len(got) != len(hyp.Tokens) {
		t.Fatalf("generator %v vs greedy %v", got, hyp.Tokens)
	}
	for i := range got {
		if got[i] != hyp.Tokens[i] {
			t.Fatalf("token %d: generator %d vs greedy %d", i, got[i], hyp.Tokens[i])
		}
	}
}

// TestGeneratorBatchedMatchesSolo is the continuous-batching correctness
// invariant: a request's stream is bit-identical whether it decodes alone
// or raggedly batched with strangers that join and leave mid-flight.
func TestGeneratorBatchedMatchesSolo(t *testing.T) {
	cfg := genTestConfig()
	dev := allocator.NewDevice()
	g, err := NewGenerator(cfg, 42, dev)
	if err != nil {
		t.Fatal(err)
	}
	mems := []*tensor.Tensor{
		testMemory(1, 5, cfg.Hidden),
		testMemory(2, 13, cfg.Hidden),
		testMemory(3, 8, cfg.Hidden),
	}
	budgets := []int{6, 14, 10}

	// Reference streams: each request alone.
	solo := make([][]int, len(mems))
	for i, mem := range mems {
		sess, err := g.NewSession(int64(100+i), mem, budgets[i])
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = drain(t, g, sess)
		sess.Close()
	}

	// Ragged run: session 0 starts alone, 1 joins after two iterations,
	// 2 joins after four; everyone leaves when done.
	sessions := make([]*GenSession, len(mems))
	var live []*GenSession
	step := 0
	joinAt := map[int]int{0: 0, 1: 2, 2: 4}
	for {
		for i, at := range joinAt {
			if at == step {
				s, err := g.NewSession(int64(i), mems[i], budgets[i])
				if err != nil {
					t.Fatal(err)
				}
				sessions[i] = s
				live = append(live, s)
			}
		}
		if len(live) == 0 {
			break
		}
		if _, err := g.Step(live); err != nil {
			t.Fatal(err)
		}
		kept := live[:0]
		for _, s := range live {
			if !s.Done() {
				kept = append(kept, s)
			}
		}
		live = kept
		step++
		if step > 64 {
			t.Fatal("ragged run did not terminate")
		}
	}
	for i, s := range sessions {
		got := s.Generated()
		if len(got) != len(solo[i]) {
			t.Fatalf("session %d: batched %v vs solo %v", i, got, solo[i])
		}
		for j := range got {
			if got[j] != solo[i][j] {
				t.Fatalf("session %d token %d: batched %d vs solo %d", i, j, got[j], solo[i][j])
			}
		}
		s.Close()
	}
	// After all sessions close, only the plan-reused decode workspace stays
	// live; every KV byte (and both KV gauges) must be back to zero.
	snap := dev.Snapshot()
	if want := g.Decoder().DecodeScratchBytes(); snap.LiveBytes != want {
		t.Fatalf("KV memory leaked: %d live bytes, want only the %d-byte decode scratch", snap.LiveBytes, want)
	}
	if snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
		t.Fatalf("KV gauges not released: reserved=%d used=%d", snap.KVReservedBytes, snap.KVUsedBytes)
	}
}

// TestKVCacheGrowthAndAccounting checks the chunked growth policy and that
// every byte is returned on Free.
func TestKVCacheGrowthAndAccounting(t *testing.T) {
	dev := allocator.NewDevice()
	const layers, hidden = 2, 8
	c, err := NewKVCache(dev, layers, hidden, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.CapTokens() != KVChunkTokens {
		t.Fatalf("initial capacity %d, want one chunk (%d)", c.CapTokens(), KVChunkTokens)
	}
	row := make([]float32, hidden)
	for tok := 0; tok < KVChunkTokens+3; tok++ {
		for i := range row {
			row[i] = float32(tok*hidden + i)
		}
		for l := 0; l < layers; l++ {
			c.AppendRow(l, row, row)
		}
		c.Advance()
	}
	if c.Len() != KVChunkTokens+3 {
		t.Fatalf("len %d", c.Len())
	}
	if c.CapTokens() <= KVChunkTokens {
		t.Fatal("cache did not grow past its first chunk")
	}
	if c.CapTokens()%KVChunkTokens != 0 {
		t.Fatalf("capacity %d not chunk-aligned", c.CapTokens())
	}
	// Rows must survive the growth copy.
	k := c.K(1, c.Len())
	for tok := 0; tok < c.Len(); tok++ {
		if k[tok*hidden] != float32(tok*hidden) {
			t.Fatalf("row %d corrupted after growth: %f", tok, k[tok*hidden])
		}
	}
	snap := dev.Snapshot()
	if snap.LiveBytes != c.Bytes() {
		t.Fatalf("device live %d != cache bytes %d", snap.LiveBytes, c.Bytes())
	}
	c.Free()
	if dev.Snapshot().LiveBytes != 0 {
		t.Fatalf("free left %d live bytes", dev.Snapshot().LiveBytes)
	}
}

// TestSessionBudgetReservation: a session's KV is sized for its whole
// budget up front, so admission control can reserve worst case.
func TestSessionBudgetReservation(t *testing.T) {
	cfg := genTestConfig()
	dev := allocator.NewDevice()
	g, err := NewGenerator(cfg, 1, dev)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := g.NewSession(1, testMemory(4, 6, cfg.Hidden), 20)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// The first Step plans the decode workspace; after that, neither the KV
	// cache (reserved up front) nor the workspace (plan covers the whole
	// budget's context growth) may allocate again.
	if _, err := g.Step([]*GenSession{sess}); err != nil {
		t.Fatal(err)
	}
	before := dev.Snapshot().AllocCount
	for !sess.Done() {
		if _, err := g.Step([]*GenSession{sess}); err != nil {
			t.Fatal(err)
		}
	}
	if grew := dev.Snapshot().AllocCount - before; grew != 0 {
		t.Fatalf("KV or scratch reallocated %d times mid-generation despite up-front reservation", grew)
	}
}
