package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/allocator"
)

// TestFP16RaggedDecodeBitIdenticalToPerRowFuzz is the fp16 twin of the fp32
// tentpole property test: on fuzzed continuous-batching schedules, the
// grouped fp16 decode path (fused-chain kernels over binary16 KV) must
// produce BIT-IDENTICAL token streams to the per-row fp16 reference
// (attendF16) — batching strangers together must never perturb a stream.
func TestFP16RaggedDecodeBitIdenticalToPerRowFuzz(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	cfg := genTestConfig()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		n := 1 + rng.Intn(5)
		mems := make([]int, n)
		budgets := make([]int, n)
		joinAt := make([]int, n)
		evictAt := make([]int, n)
		for i := 0; i < n; i++ {
			mems[i] = 1 + rng.Intn(17)
			budgets[i] = 1 + rng.Intn(20)
			joinAt[i] = rng.Intn(6)
			evictAt[i] = -1
			if rng.Intn(4) == 0 {
				evictAt[i] = 1 + rng.Intn(8)
			}
		}
		joinAt[0] = 0

		grouped, err := NewGenerator(cfg, 42, allocator.NewDevice())
		if err != nil {
			t.Fatal(err)
		}
		grouped.EnableFP16()
		perRow, err := NewGenerator(cfg, 42, allocator.NewDevice())
		if err != nil {
			t.Fatal(err)
		}
		perRow.EnableFP16()
		perRow.PerRowAttention = true

		got := raggedRun(t, grouped, mems, budgets, joinAt, evictAt, int64(trial)*37)
		want := raggedRun(t, perRow, mems, budgets, joinAt, evictAt, int64(trial)*37)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("trial %d session %d: grouped %v vs per-row %v", trial, i, got[i], want[i])
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d session %d token %d: grouped %d vs per-row %d",
						trial, i, j, got[i][j], want[i][j])
				}
			}
		}
		if grouped.FusedLaunches() == 0 {
			t.Fatal("grouped fp16 run dispatched no fused attention chains")
		}
		if perRow.FusedLaunches() != 0 {
			t.Fatal("per-row fp16 run counted fused chains")
		}
	}
}

// TestFP16PagedBitIdenticalToContiguous closes the fp16 quartet: paged
// grouped and paged per-row streams must match the contiguous fp16 streams
// token for token — blocked binary16 K/V reads are exact resumptions of the
// contiguous accumulation.
func TestFP16PagedBitIdenticalToContiguous(t *testing.T) {
	cfg := genTestConfig()
	mems := []int{5, 1, 11, 17}
	budgets := []int{9, 14, 3, 20}
	joinAt := []int{0, 2, 1, 0}
	evictAt := []int{-1, -1, -1, 6}

	mk := func(paged, perRow bool) [][]int {
		t.Helper()
		var g *Generator
		if paged {
			g, _, _ = newPagedGenerator(t, cfg, 4096, 0)
			g.EnableFP16()
			g.PerRowAttention = perRow
			return pagedRun(t, g, mems, budgets, joinAt, evictAt, 71)
		}
		g, err := NewGenerator(cfg, 42, allocator.NewDevice())
		if err != nil {
			t.Fatal(err)
		}
		g.EnableFP16()
		g.PerRowAttention = perRow
		return raggedRun(t, g, mems, budgets, joinAt, evictAt, 71)
	}

	want := mk(false, false)
	for _, variant := range []struct {
		name   string
		paged  bool
		perRow bool
	}{
		{"contiguous-per-row", false, true},
		{"paged-grouped", true, false},
		{"paged-per-row", true, true},
	} {
		got := mk(variant.paged, variant.perRow)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("%s session %d: %v vs %v", variant.name, i, got[i], want[i])
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s session %d token %d: %d vs %d",
						variant.name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestFP16KVBytesHalved pins the capacity claim at the accounting layer:
// binary16 KV rows must cost exactly half the bytes on every gauge — the
// per-token unit, the admission reservation, and the used gauge as tokens
// land.
func TestFP16KVBytesHalved(t *testing.T) {
	cfg := genTestConfig()
	g32, err := NewGenerator(cfg, 42, allocator.NewDevice())
	if err != nil {
		t.Fatal(err)
	}
	g16, err := NewGenerator(cfg, 42, allocator.NewDevice())
	if err != nil {
		t.Fatal(err)
	}
	g16.EnableFP16()
	if g16.KVRowBytes()*2 != g32.KVRowBytes() {
		t.Fatalf("KVRowBytes fp16 %d, fp32 %d — want exactly half", g16.KVRowBytes(), g32.KVRowBytes())
	}

	dev := allocator.NewDevice()
	const layers, hidden, grant = 2, 8, 10
	c, err := NewKVCacheF16(dev, layers, hidden, grant)
	if err != nil {
		t.Fatal(err)
	}
	perTok := int64(layers) * 2 * hidden * 2 // binary16: 2 bytes/elem
	snap := dev.Snapshot()
	if snap.KVReservedBytes != grant*perTok {
		t.Fatalf("fp16 reservation %d, want %d (half the fp32 grant)", snap.KVReservedBytes, grant*perTok)
	}
	row := make([]float32, hidden)
	for tok := 1; tok <= 3; tok++ {
		for l := 0; l < layers; l++ {
			c.AppendRow(l, row, row)
		}
		c.Advance()
		if used := dev.Snapshot().KVUsedBytes; used != int64(tok)*perTok {
			t.Fatalf("after %d tokens: used %d, want %d", tok, used, int64(tok)*perTok)
		}
	}
	c.Free()
	if snap = dev.Snapshot(); snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
		t.Fatalf("gauges not released: reserved=%d used=%d", snap.KVReservedBytes, snap.KVUsedBytes)
	}
}

// TestFP16BlockTokensDoubled: on the same pool geometry (blocks sized for
// KVChunkTokens fp32 rows), a binary16 paged cache packs exactly twice the
// tokens per block — the paged form of the 2× capacity win.
func TestFP16BlockTokensDoubled(t *testing.T) {
	dev := allocator.NewDevice()
	const hidden, layers = 16, 2
	pool := allocator.NewBlockPool(dev, int64(KVChunkTokens)*hidden*4, 64)
	defer pool.Close()
	c32, err := NewBlockKVCache(pool, layers, hidden)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := NewBlockKVCacheF16(pool, layers, hidden)
	if err != nil {
		t.Fatal(err)
	}
	defer c32.Free()
	defer c16.Free()
	if c16.BlockTokens() != 2*c32.BlockTokens() {
		t.Fatalf("fp16 blockTok %d, fp32 %d — want exactly double", c16.BlockTokens(), c32.BlockTokens())
	}

	// Fill both two blocks' worth of fp32 tokens: the fp16 cache must hold
	// them in half the blocks.
	row := make([]float32, hidden)
	for tok := 0; tok < 2*c32.BlockTokens(); tok++ {
		for _, c := range []*BlockKVCache{c32, c16} {
			if !c.EnsureAppendable() {
				t.Fatal("pool exhausted in a sized test")
			}
			for l := 0; l < layers; l++ {
				c.AppendRow(l, row, row)
			}
			c.Advance()
		}
	}
	if c16.Blocks()*2 != c32.Blocks() {
		t.Fatalf("fp16 holds %d blocks vs fp32 %d — want half", c16.Blocks(), c32.Blocks())
	}
}

// TestFP16SessionCapacityDoubled: with one shared pool, fp16 admits exactly
// twice the sessions at a multi-block context depth — the serving-level
// statement of the KV halving (a 2·KVChunkTokens context spans two fp32
// blocks per table but only one binary16 block).
func TestFP16SessionCapacityDoubled(t *testing.T) {
	const layers, hidden, depth = 2, 16, 2 * KVChunkTokens
	count := func(fp16 bool) int {
		t.Helper()
		dev := allocator.NewDevice()
		pool := allocator.NewBlockPool(dev, int64(KVChunkTokens)*hidden*4, 48)
		defer pool.Close()
		newC := NewBlockKVCache
		if fp16 {
			newC = NewBlockKVCacheF16
		}
		row := make([]float32, hidden)
		admitted := 0
		var open []*BlockKVCache
		defer func() {
			for _, c := range open {
				c.Free()
			}
		}()
		for {
			c, err := newC(pool, layers, hidden)
			if err != nil {
				t.Fatal(err)
			}
			open = append(open, c)
			for tok := 0; tok < depth; tok++ {
				if !c.EnsureAppendable() {
					return admitted
				}
				for l := 0; l < layers; l++ {
					c.AppendRow(l, row, row)
				}
				c.Advance()
			}
			admitted++
		}
	}
	n32, n16 := count(false), count(true)
	if n16 != 2*n32 {
		t.Fatalf("pool held %d fp16 sessions at depth %d vs %d fp32 — want exactly 2×", n16, depth, n32)
	}
}

// TestFP16GeneratorToleranceVsFP32 is the engine-level tolerance oracle on
// the decode side: stepping identical fresh sessions through the fp32 and
// fp16 routes, the vocab logits must stay within the documented relative
// error bound — and must not be bit-identical (the rounding is real).
func TestFP16GeneratorToleranceVsFP32(t *testing.T) {
	cfg := genTestConfig()
	for _, paged := range []bool{false, true} {
		var g32, g16 *Generator
		var err error
		if paged {
			g32, _, _ = newPagedGenerator(t, cfg, 4096, 0)
			g16, _, _ = newPagedGenerator(t, cfg, 4096, 0)
		} else {
			if g32, err = NewGenerator(cfg, 42, allocator.NewDevice()); err != nil {
				t.Fatal(err)
			}
			if g16, err = NewGenerator(cfg, 42, allocator.NewDevice()); err != nil {
				t.Fatal(err)
			}
		}
		g16.EnableFP16()

		open := func(g *Generator, i int, srcLen int) *GenSession {
			t.Helper()
			mem := testMemory(int64(100+i), srcLen, cfg.Hidden)
			var s *GenSession
			var err error
			if paged {
				s, err = g.NewPagedSession(int64(i), []int{500 + i}, mem, 12)
			} else {
				s, err = g.NewSession(int64(i), mem, 12)
			}
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		lens := []int{3, 9, 1, 14}
		var live32, live16 []*GenSession
		for i, srcLen := range lens {
			live32 = append(live32, open(g32, i, srcLen))
			live16 = append(live16, open(g16, i, srcLen))
		}
		maxRel := 0.0
		vocab := cfg.Vocab
		for step := 0; step < 6; step++ {
			if _, err := g32.Step(live32); err != nil {
				t.Fatal(err)
			}
			if _, err := g16.Step(live16); err != nil {
				t.Fatal(err)
			}
			ref := g32.dec.scr.logits[:len(live32)*vocab]
			got := g16.dec.scr.logits[:len(live16)*vocab]
			for i := range ref {
				rel := math.Abs(float64(got[i])-float64(ref[i])) / (math.Abs(float64(ref[i])) + 1e-3)
				if rel > maxRel {
					maxRel = rel
				}
			}
			// Keep the two batches aligned: fp16 may pick different tokens
			// late in a stream, so force the same continuation on both.
			for i := range live16 {
				live16[i].next = live32[i].next
				if live32[i].done != live16[i].done {
					live16[i].done = live32[i].done
				}
			}
			kept32, kept16 := live32[:0], live16[:0]
			for i := range live32 {
				if live32[i].done {
					live32[i].Close()
					live16[i].Close()
					continue
				}
				kept32 = append(kept32, live32[i])
				kept16 = append(kept16, live16[i])
			}
			live32, live16 = kept32, kept16
			if len(live32) == 0 {
				break
			}
		}
		for i := range live32 {
			live32[i].Close()
			live16[i].Close()
		}
		// The vocab projection sits past every LayerNorm, so logit drift
		// runs a little past the single-layer bound; 5e-2 is the documented
		// decode-logit tolerance (DESIGN.md §2d).
		if maxRel > 5e-2 {
			t.Fatalf("paged=%v: fp16 decode max relative logit error %.4g exceeds 5e-2", paged, maxRel)
		}
		if maxRel == 0 {
			t.Fatalf("paged=%v: fp16 logits bit-identical to fp32 — rounding not applied", paged)
		}
	}
}

// TestFP16PrefixReplayBitIdentical: retiring an fp16 paged session and
// re-asking the same prompt must replay the cached stream and continue
// bit-identically past it — MapFrom carries the binary16 half mode through.
func TestFP16PrefixReplayBitIdentical(t *testing.T) {
	cfg := genTestConfig()
	prompt := []int{7, 3, 11}
	mem := testMemory(5, 6, cfg.Hidden)

	// Reference: one uninterrupted fp16 generation to budget 20.
	gRef, _, _ := newPagedGenerator(t, cfg, 4096, 4)
	gRef.EnableFP16()
	sRef, err := gRef.NewPagedSession(1, prompt, mem, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, gRef, sRef)

	// Split run: decode 8, retire, reopen (no memory — prefix hit), continue.
	g, _, _ := newPagedGenerator(t, cfg, 4096, 4)
	g.EnableFP16()
	s1, err := g.NewPagedSession(1, prompt, mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, g, s1)
	g.Retire(s1)
	s2, err := g.NewPagedSession(2, prompt, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, g, s2)
	s2.Close()

	if len(got) != len(want) {
		t.Fatalf("replayed stream %v vs reference %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: replay %d vs reference %d", i, got[i], want[i])
		}
	}
	if g.PrefixStats().Hits == 0 {
		t.Fatal("second session did not hit the prefix cache")
	}
}
