package model

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// The batched step must be numerically equivalent to advancing each beam
// with the single-beam step (projections are row-independent).
func TestStepAllMatchesSingleStep(t *testing.T) {
	cfg := tinyDecoder()
	dec, err := NewDecoder(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	memory := tensor.RandN(7, 0.5, 6, cfg.Hidden)
	cc := dec.buildCrossCache(memory)

	layers := cfg.Layers
	mkStates := func(n int) []*decodeState {
		states := make([]*decodeState, n)
		for i := range states {
			states[i] = &decodeState{
				selfK: make([][]float32, layers),
				selfV: make([][]float32, layers),
			}
		}
		return states
	}

	const beams = 3
	batched := mkStates(beams)
	single := mkStates(beams)
	toks := []int{TokBos, 5, 9}

	// Advance two positions to exercise cache growth.
	for pos := 0; pos < 2; pos++ {
		batchLogits := dec.stepAll(batched, cc, toks, pos)
		for bi := 0; bi < beams; bi++ {
			soloLogits := dec.step(single[bi], cc, toks[bi], pos)
			for j := range soloLogits {
				if d := math.Abs(float64(soloLogits[j] - batchLogits[bi][j])); d > 1e-4 {
					t.Fatalf("pos %d beam %d logit %d: %g vs %g",
						pos, bi, j, soloLogits[j], batchLogits[bi][j])
				}
			}
		}
	}
	// Caches must match too.
	for bi := 0; bi < beams; bi++ {
		for l := 0; l < layers; l++ {
			a := tensor.FromSlice(batched[bi].selfK[l], len(batched[bi].selfK[l]))
			b := tensor.FromSlice(single[bi].selfK[l], len(single[bi].selfK[l]))
			if !a.AllClose(b, 1e-4, 1e-4) {
				t.Fatalf("beam %d layer %d K cache diverges: %g", bi, l, a.MaxAbsDiff(b))
			}
		}
	}
}

func TestStepAllSingleBeamDegenerate(t *testing.T) {
	cfg := tinyDecoder()
	dec, err := NewDecoder(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	memory := tensor.RandN(3, 0.5, 4, cfg.Hidden)
	cc := dec.buildCrossCache(memory)
	st := &decodeState{
		selfK: make([][]float32, cfg.Layers),
		selfV: make([][]float32, cfg.Layers),
	}
	logits := dec.stepAll([]*decodeState{st}, cc, []int{TokBos}, 0)
	if len(logits) != 1 || len(logits[0]) != cfg.Vocab {
		t.Fatalf("logits shape: %d x %d", len(logits), len(logits[0]))
	}
}

// BeamSearch through the batched path must still beat/equal greedy and stay
// deterministic (regression guard for the batching change).
func TestBeamSearchBatchedStillDeterministic(t *testing.T) {
	cfg := tinyDecoder()
	dec, err := NewDecoder(cfg, 51)
	if err != nil {
		t.Fatal(err)
	}
	memory := tensor.RandN(9, 0.5, 5, cfg.Hidden)
	a, err := dec.BeamSearch(memory, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dec.BeamSearch(memory, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0].Score != b[0].Score {
		t.Fatal("batched beam search non-deterministic")
	}
}

// TestBeamSearchConcurrentSafe: beam searches share the decoder's decode
// workspace, so concurrent calls must serialise on it — same hypotheses as
// sequential runs, race-clean under -race.
func TestBeamSearchConcurrentSafe(t *testing.T) {
	cfg := tinyDecoder()
	dec, err := NewDecoder(cfg, 91)
	if err != nil {
		t.Fatal(err)
	}
	mems := []*tensor.Tensor{
		tensor.RandN(1, 0.5, 4, cfg.Hidden),
		tensor.RandN(2, 0.5, 7, cfg.Hidden),
		tensor.RandN(3, 0.5, 5, cfg.Hidden),
	}
	want := make([][]Hypothesis, len(mems))
	for i, mem := range mems {
		h, err := dec.BeamSearch(mem, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = h
	}
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(mems)
			got, err := dec.BeamSearch(mems[i], 10)
			if err != nil {
				errs[g] = err
				return
			}
			if len(got) != len(want[i]) || got[0].Score != want[i][0].Score {
				errs[g] = fmt.Errorf("memory %d: concurrent %v vs sequential %v", i, got, want[i])
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
