package model

import (
	"testing"

	"repro/internal/allocator"
)

func tinyTranslator(t *testing.T) *Translator {
	t.Helper()
	encCfg := BertBase().Scaled(32, 4, 64, 2)
	decCfg := tinyDecoder() // hidden 32 matches
	tr, err := NewTranslator(encCfg, decCfg, 7, allocator.NewTurbo(allocator.NewDevice()))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTranslateEndToEnd(t *testing.T) {
	tr := tinyTranslator(t)
	hyps, err := tr.Translate([]int{5, 8, 13, 21, 34}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(hyps) == 0 {
		t.Fatal("no hypotheses")
	}
	if len(hyps[0].Tokens) == 0 || len(hyps[0].Tokens) > 12 {
		t.Fatalf("tokens: %v", hyps[0].Tokens)
	}
	// Deterministic.
	again, err := tr.Translate([]int{5, 8, 13, 21, 34}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Score != hyps[0].Score {
		t.Fatal("translation not deterministic")
	}
}

func TestTranslateDifferentSourcesDiffer(t *testing.T) {
	tr := tinyTranslator(t)
	a, err := tr.Translate([]int{5, 6, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Translate([]int{200, 201, 202, 203, 204, 205}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Score == b[0].Score {
		t.Fatal("different sources should score differently")
	}
}

func TestTranslatorValidation(t *testing.T) {
	encCfg := BertBase().Scaled(32, 4, 64, 1)
	decCfg := Seq2SeqDecoder().Scaled(64, 4, 128, 1) // hidden mismatch
	if _, err := NewTranslator(encCfg, decCfg, 1, allocator.NewTurbo(allocator.NewDevice())); err == nil {
		t.Fatal("hidden mismatch should fail")
	}
	tr := tinyTranslator(t)
	if _, err := tr.Translate(nil, 8); err == nil {
		t.Fatal("empty source should fail")
	}
}
