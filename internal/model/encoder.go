package model

import (
	"fmt"
	"time"

	"repro/internal/allocator"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Encoder is a stack of transformer encoder layers executed through the
// fused computation-graph runtime. One graph structure is shared by all
// layers (each with its own weight binding), and — as §6.2.2 describes for
// repeated structures — the memory plan is computed once per inference and
// reused for every layer.
type Encoder struct {
	Cfg   Config
	Graph *graph.Graph
	// execs holds one executor per layer (ALBERT shares the same weight
	// binding across all of them).
	execs []*graph.Executor
	alloc allocator.Allocator
}

// EncoderStats aggregates per-inference runtime metrics.
type EncoderStats struct {
	PlanTime       time.Duration
	FootprintBytes int64
}

// NewEncoder builds an encoder with deterministic random weights drawn from
// seed. Pass fused=false to build the unfused (training-framework-style)
// graph for comparisons.
func NewEncoder(cfg Config, seed int64, alloc allocator.Allocator, fused bool) (*Encoder, error) {
	build := graph.NewEncoderLayerUnfused
	if fused {
		build = graph.NewEncoderLayerFused
	}
	return newEncoderWith(cfg, seed, alloc, build)
}

// NewEncoderFusedChains builds the encoder on the fused-chain graph — the
// Fig. 3b fused kernels with the attention core further collapsed to
// qk_scaled_softmax + pv_transpose_back (two launches fewer per layer).
// This is the graph the fp16 fast path serves on.
func NewEncoderFusedChains(cfg Config, seed int64, alloc allocator.Allocator) (*Encoder, error) {
	return newEncoderWith(cfg, seed, alloc, graph.NewEncoderLayerFusedChains)
}

func newEncoderWith(cfg Config, seed int64, alloc allocator.Allocator, build func(graph.LayerConfig) *graph.Graph) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IsDecoder {
		return nil, fmt.Errorf("model %s: use NewDecoder for decoder configs", cfg.Name)
	}
	g := build(cfg.LayerConfig())
	e := &Encoder{Cfg: cfg, Graph: g, alloc: alloc}
	shared := graph.RandomWeights(g, seed)
	for l := 0; l < cfg.Layers; l++ {
		weights := shared
		if !cfg.ShareLayers && l > 0 {
			weights = graph.RandomWeights(g, seed+int64(l)*1000)
		}
		ex, err := graph.NewExecutor(g, weights, alloc)
		if err != nil {
			return nil, err
		}
		e.execs = append(e.execs, ex)
	}
	return e, nil
}

// Forward runs the full encoder stack on hidden states
// [batch, seq, hidden]. seqLens carries each request's true length for
// attention masking (nil = all full length). Memory offsets are planned
// once and reused across all layers (the §6.2.2 repeated-structure trick).
func (e *Encoder) Forward(hidden *tensor.Tensor, seqLens []int) (*tensor.Tensor, EncoderStats, error) {
	batch, seq := hidden.Dim(0), hidden.Dim(1)
	records := e.Graph.UsageRecords(batch, seq)
	planStart := time.Now()
	plan := e.alloc.Plan(records)
	stats := EncoderStats{
		PlanTime:       time.Since(planStart),
		FootprintBytes: plan.FootprintBytes(),
	}
	if err := allocator.Validate(plan, records); err != nil {
		return nil, stats, fmt.Errorf("model %s: invalid plan from %s: %w", e.Cfg.Name, e.alloc.Name(), err)
	}
	x := hidden
	for l, ex := range e.execs {
		out, err := ex.RunWithPlan(x, seqLens, plan)
		if err != nil {
			return nil, stats, fmt.Errorf("layer %d: %w", l, err)
		}
		x = out
	}
	return x, stats, nil
}

// ForwardPacked runs the full encoder stack on a packed (zero-padding)
// batch. The memory plan is keyed on the batch's true token totals —
// Σ len_i and Σ len_i² — rather than batch·maxLen, and is still planned
// once and reused across all layers.
func (e *Encoder) ForwardPacked(hidden *tensor.Packed) (*tensor.Packed, EncoderStats, error) {
	records := e.Graph.UsageRecordsPacked(hidden.Lens())
	planStart := time.Now()
	plan := e.alloc.Plan(records)
	stats := EncoderStats{
		PlanTime:       time.Since(planStart),
		FootprintBytes: plan.FootprintBytes(),
	}
	if err := allocator.Validate(plan, records); err != nil {
		return nil, stats, fmt.Errorf("model %s: invalid packed plan from %s: %w", e.Cfg.Name, e.alloc.Name(), err)
	}
	x := hidden
	for l, ex := range e.execs {
		out, err := ex.RunPackedWithPlan(x, plan)
		if err != nil {
			return nil, stats, fmt.Errorf("layer %d (packed): %w", l, err)
		}
		x = out
	}
	return x, stats, nil
}

// NumLayers returns the stack depth.
func (e *Encoder) NumLayers() int { return len(e.execs) }

// EnableTensorCoreEmulation switches every layer to the FP16-operand /
// FP32-accumulate GEMM path (the Turbo-TC numeric behaviour, §6.2.1).
func (e *Encoder) EnableTensorCoreEmulation() {
	for _, ex := range e.execs {
		ex.EnableTensorCoreEmulation()
	}
}

// EnableFP16 switches every layer to the binary16 fast path: weights
// encoded once, activations rounded at each GEMM boundary, fp32
// accumulation (bit-identical to EnableTensorCoreEmulation, with real
// binary16 weight storage).
func (e *Encoder) EnableFP16() {
	for _, ex := range e.execs {
		ex.EnableFP16()
	}
}

// FP16Enabled reports whether EnableFP16 was called.
func (e *Encoder) FP16Enabled() bool {
	return len(e.execs) > 0 && e.execs[0].FP16Enabled()
}

// FusedLaunches sums the fused-chain kernel launches across the stack's
// executors (0 unless the encoder runs the fused-chain graph).
func (e *Encoder) FusedLaunches() int64 {
	var n int64
	for _, ex := range e.execs {
		n += ex.FusedLaunches()
	}
	return n
}

// Allocator exposes the memory manager (for footprint experiments).
func (e *Encoder) Allocator() allocator.Allocator { return e.alloc }
