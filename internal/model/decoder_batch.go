package model

import (
	"repro/internal/blas"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// stepAll advances every live beam by one token with batched projections:
// one [beams,H]×[H,N] GEMM per linear layer instead of per-beam GEMV-sized
// calls. This is how a real decoder exploits the beam dimension on GPU
// (and on our parallel CPU substrate); results are bit-identical to the
// single-beam step because every projection is row-independent.
//
// Each beam's KV cache is updated in place. Returns one logits row per
// beam; the rows are views into the decoder's reusable decode scratch (the
// same workspace Generator.Step draws from, so beam search allocates no
// per-token activation buffers either — only attend's small per-head score
// rows remain) and are only valid until the next stepAll or Generator.Step
// call on this decoder.
func (d *Decoder) stepAll(states []*decodeState, cc *crossCache, toks []int, pos int) [][]float32 {
	d.scr.mu.Lock()
	defer d.scr.mu.Unlock()
	return d.stepAllLocked(states, cc, toks, pos)
}

// stepAllLocked is stepAll's body; the caller must hold d.scr.mu and must
// consume the returned logits views before releasing it (BeamSearch holds
// the lock across its whole position loop for exactly this reason).
func (d *Decoder) stepAllLocked(states []*decodeState, cc *crossCache, toks []int, pos int) [][]float32 {
	h, inter, vocab := d.Cfg.Hidden, d.Cfg.Inter, d.Cfg.Vocab
	beams := len(states)

	scr := d.scr
	scr.plan(&d.Cfg, beams, 0)

	// Embed all beams: word + position + LayerNorm, one row per beam.
	x := scr.x[:beams*h]
	pe := scr.pe
	positionEncoding(pos, h, pe)
	for bi, tok := range toks {
		row := x[bi*h : (bi+1)*h]
		copy(row, d.Embed.Word.Data()[tok*h:(tok+1)*h])
		for i := range row {
			row[i] += pe[i]
		}
	}
	kernels.LayerNorm(x, d.Embed.Gamma.Data(), d.Embed.Beta.Data(), beams, h, 1e-5)

	// Batched per-iteration buffers, drawn from the decode workspace.
	q := scr.q[:beams*h]
	kNew := scr.k[:beams*h]
	vNew := scr.v[:beams*h]
	ctx := scr.ctx[:beams*h]
	proj := scr.proj[:beams*h]
	interBuf := scr.inter[:beams*inter]

	batchedLinear := func(in []float32, w *tensorMat, out []float32) {
		blas.Gemm(false, false, beams, w.n, w.k, 1, in, w.k, w.data, w.n, 0, out, w.n)
		if w.bias != nil {
			kernels.AddBias(out, w.bias, beams, w.n)
		}
	}

	for l := range d.layers {
		lw := &d.layers[l]

		// Self-attention: batched Q/K/V projections, per-beam cache attend.
		batchedLinear(x, mat(lw.selfWq, lw.selfBq), q)
		batchedLinear(x, mat(lw.selfWk, lw.selfBk), kNew)
		batchedLinear(x, mat(lw.selfWv, lw.selfBv), vNew)
		for bi, st := range states {
			st.selfK[l] = append(st.selfK[l], kNew[bi*h:(bi+1)*h]...)
			st.selfV[l] = append(st.selfV[l], vNew[bi*h:(bi+1)*h]...)
			T := len(st.selfK[l]) / h
			d.attend(q[bi*h:(bi+1)*h], st.selfK[l], st.selfV[l], T, ctx[bi*h:(bi+1)*h])
		}
		batchedLinear(ctx, mat(lw.selfWo, lw.selfBo), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.selfLnG.Data(), lw.selfLnB.Data(), beams, h, 1e-5)

		// Cross-attention: the K/V cache is shared across beams.
		batchedLinear(x, mat(lw.crossWq, lw.crossBq), q)
		for bi := range states {
			d.attend(q[bi*h:(bi+1)*h], cc.k[l], cc.v[l], cc.srcLen, ctx[bi*h:(bi+1)*h])
		}
		batchedLinear(ctx, mat(lw.crossWo, lw.crossBo), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.crossLnG.Data(), lw.crossLnB.Data(), beams, h, 1e-5)

		// Feed-forward network, batched.
		batchedLinear(x, mat(lw.ffnW1, lw.ffnB1), interBuf)
		kernels.Act(d.Cfg.Act, interBuf)
		batchedLinear(interBuf, mat(lw.ffnW2, lw.ffnB2), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.ffnLnG.Data(), lw.ffnLnB.Data(), beams, h, 1e-5)
	}

	// Vocabulary projection for all beams at once.
	logits := scr.logits[:beams*vocab]
	blas.Gemm(false, false, beams, vocab, h, 1, x, h, d.Proj.Data(), vocab, 0, logits, vocab)
	out := make([][]float32, beams)
	for bi := range out {
		out[bi] = logits[bi*vocab : (bi+1)*vocab]
	}
	return out
}

// tensorMat bundles a weight matrix with its optional bias for
// batchedLinear.
type tensorMat struct {
	data []float32
	bias []float32
	k, n int
}

func mat(w, b *tensor.Tensor) *tensorMat {
	m := &tensorMat{data: w.Data(), k: w.Dim(0), n: w.Dim(1)}
	if b != nil {
		m.bias = b.Data()
	}
	return m
}
