// Package model implements the four transformer DNNs the paper evaluates
// (Table 3): BERT, ALBERT, DistilBERT — encoder stacks executed through the
// computation-graph runtime — and a Seq2Seq decoder with beam search for
// the neural-machine-translation workload.
package model

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/kernels"
)

// Config describes a transformer model's geometry.
type Config struct {
	Name   string
	Layers int
	Hidden int
	Heads  int
	Inter  int
	Act    kernels.Activation

	// ShareLayers makes every layer use layer 0's weights (ALBERT's
	// cross-layer parameter sharing).
	ShareLayers bool

	// Vocab is the vocabulary size for embedding/projection layers.
	Vocab int

	// Decoder-only fields (Seq2Seq decoder, Table 3 bottom row).
	IsDecoder    bool
	BeamSize     int
	MaxTargetLen int
}

// LayerConfig returns the per-layer graph geometry.
func (c Config) LayerConfig() graph.LayerConfig {
	return graph.LayerConfig{Hidden: c.Hidden, Heads: c.Heads, Inter: c.Inter, Act: c.Act}
}

// HeadDim returns Hidden/Heads.
func (c Config) HeadDim() int { return c.LayerConfig().HeadDim() }

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.Inter <= 0 {
		return fmt.Errorf("model %s: non-positive dimension in %+v", c.Name, c)
	}
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("model %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	}
	if c.IsDecoder && c.BeamSize <= 0 {
		return fmt.Errorf("model %s: decoder needs a positive beam size", c.Name)
	}
	return nil
}

// The evaluated models of Table 3. Where the printed table conflicts with
// the text ("Bert adopts a base configuration"), the text wins; the
// deviations are documented in DESIGN.md §1.

// BertBase is the BERT base configuration: 12 layers, 12 heads, hidden 768,
// intermediate 3072.
func BertBase() Config {
	return Config{
		Name: "Bert", Layers: 12, Hidden: 768, Heads: 12, Inter: 3072,
		Act: kernels.ActGELU, Vocab: 30522,
	}
}

// Albert is the ALBERT configuration as printed in Table 3 (xxlarge-shaped):
// 12 layers, 64 heads, hidden 4096, intermediate 16384, with ALBERT's
// cross-layer weight sharing.
func Albert() Config {
	return Config{
		Name: "Albert", Layers: 12, Hidden: 4096, Heads: 64, Inter: 16384,
		Act: kernels.ActGELU, Vocab: 30000, ShareLayers: true,
	}
}

// DistilBert halves BERT's depth: 6 layers, 12 heads, hidden 768,
// intermediate 3072.
func DistilBert() Config {
	return Config{
		Name: "DistilBert", Layers: 6, Hidden: 768, Heads: 12, Inter: 3072,
		Act: kernels.ActGELU, Vocab: 30522,
	}
}

// Seq2SeqDecoder is the NMT decoder of Table 3: 6 layers, 16 heads, hidden
// 1024 with the printed "hidden_size=3072" read as the FFN inner size
// (incremental decoding is weight-bandwidth-bound, and these dimensions are
// what land the Fig. 9 decoder latencies in the paper's ~50–300 ms range;
// hidden 3072 would overshoot ~3×). Beam 4, max target length 500.
func Seq2SeqDecoder() Config {
	return Config{
		Name: "Seq2SeqDecoder", Layers: 6, Hidden: 1024, Heads: 16, Inter: 3072,
		Act: kernels.ActReLU, Vocab: 32000,
		IsDecoder: true, BeamSize: 4, MaxTargetLen: 500,
	}
}

// AllConfigs returns the four evaluated models in the paper's order.
func AllConfigs() []Config {
	return []Config{BertBase(), Albert(), DistilBert(), Seq2SeqDecoder()}
}

// Scaled returns a structurally identical but smaller configuration for
// functional tests and CPU examples (the full ALBERT at hidden 4096 is a
// GPU-scale workload).
func (c Config) Scaled(hidden, heads, inter, layers int) Config {
	s := c
	s.Name = c.Name + "-scaled"
	s.Hidden, s.Heads, s.Inter, s.Layers = hidden, heads, inter, layers
	if s.Vocab > 512 {
		s.Vocab = 512
	}
	return s
}
