package model

import (
	"fmt"

	"repro/internal/allocator"
	"repro/internal/blas"
	"repro/internal/tensor"
)

// BlockKVCache is the paged replacement for KVCache: one generation
// request's self-attention keys and values stored as fixed-size blocks from
// a shared allocator.BlockPool instead of contiguous per-request buffers
// reserved worst-case. Per layer it keeps two block tables (K and V); block
// b holds rows [b*blockTok, (b+1)*blockTok). Blocks are acquired only as
// decode depth actually reaches them, so a request that stops early never
// claimed the pool space its budget implied — admission can pack by actual
// consumption.
//
// Sharing: MapFrom adopts another cache's blocks by reference (prompt-hash
// prefix sharing), and owned[] tracks write permission per block index. A
// block that is shared — or adopted at all, since it may hold donor rows
// past the mapped length — is read-only; EnsureAppendable copy-on-writes
// the tail before the next append, so appends never mutate bytes any other
// holder can see.
//
// Accounting: the pool charges the device's KV-reserved gauge per block
// held (once, however many caches share it) and the KV-used gauge per
// committed row (Advance → pool.Commit). An eviction at any point — even
// between AppendRow and Advance — releases blocks whose committed payload
// is exactly what was charged, so the gauges return to zero.
//
// A BlockKVCache is confined to the decode loop's goroutine, like KVCache.
type BlockKVCache struct {
	pool     *allocator.BlockPool
	hidden   int
	half     bool // binary16 rows: 2 bytes/element, double the tokens per block
	blockTok int
	k, v     [][]*allocator.Block // [layer][block]
	owned    [][]bool             // [layer][block]: this cache may write K and V there
	length   int                  // committed rows

	// Invariant outside EnsureAppendable: len(k[l]) == len(v[l]) ==
	// ceil(length'/blockTok) where length' is length or length+1 if a
	// boundary block was pre-acquired for the in-flight step.
}

// NewBlockKVCache opens an empty paged cache on pool. The pool's block size
// must be a whole number of [hidden]float32 rows. No blocks are acquired
// until the first EnsureAppendable.
func NewBlockKVCache(pool *allocator.BlockPool, layers, hidden int) (*BlockKVCache, error) {
	return newBlockKVCache(pool, layers, hidden, false)
}

// NewBlockKVCacheF16 opens an empty paged cache with binary16 rows: the same
// pool blocks hold twice the tokens, so the same device budget admits ~2×
// the sessions. The pool block size is unchanged — only blockTok doubles.
func NewBlockKVCacheF16(pool *allocator.BlockPool, layers, hidden int) (*BlockKVCache, error) {
	return newBlockKVCache(pool, layers, hidden, true)
}

func newBlockKVCache(pool *allocator.BlockPool, layers, hidden int, half bool) (*BlockKVCache, error) {
	if layers <= 0 || hidden <= 0 {
		return nil, fmt.Errorf("model: invalid paged KV geometry layers=%d hidden=%d", layers, hidden)
	}
	rowBytes := int64(hidden) * 4
	if half {
		rowBytes = int64(hidden) * 2
	}
	if pool.BlockBytes() < rowBytes || pool.BlockBytes()%rowBytes != 0 {
		return nil, fmt.Errorf("model: pool block %d bytes not a multiple of the %d-byte KV row",
			pool.BlockBytes(), rowBytes)
	}
	return &BlockKVCache{
		pool:     pool,
		hidden:   hidden,
		half:     half,
		blockTok: int(pool.BlockBytes() / rowBytes),
		k:        make([][]*allocator.Block, layers),
		v:        make([][]*allocator.Block, layers),
		owned:    make([][]bool, layers),
	}, nil
}

// Half reports whether the cache stores binary16 rows.
func (c *BlockKVCache) Half() bool { return c.half }

// rowBytes returns the committed size of one [hidden] row.
func (c *BlockKVCache) rowBytes() int64 {
	if c.half {
		return int64(c.hidden) * 2
	}
	return int64(c.hidden) * 4
}

// BlockTokens returns the pool's block size in rows.
func (c *BlockKVCache) BlockTokens() int { return c.blockTok }

// Len returns the number of committed tokens.
func (c *BlockKVCache) Len() int { return c.length }

// Bytes returns the device footprint of the blocks this cache holds
// (shared blocks included — they are live memory the cache keeps alive).
func (c *BlockKVCache) Bytes() int64 {
	return int64(c.Blocks()) * c.pool.BlockBytes()
}

// Blocks returns how many pool blocks the cache currently holds.
func (c *BlockKVCache) Blocks() int {
	n := 0
	for l := range c.k {
		n += len(c.k[l]) + len(c.v[l])
	}
	return n
}

// MapFrom adopts the first rows committed rows of src by reference: every
// covering block is retained, not copied, and marked read-only for this
// cache (the tail copy-on-writes at the first append). Only an empty cache
// can map, and src must have the rows committed. The KV-used gauge does not
// move — the rows exist physically once.
func (c *BlockKVCache) MapFrom(src *BlockKVCache, rows int) error {
	if c.length != 0 || c.Blocks() != 0 {
		return fmt.Errorf("model: MapFrom into a non-empty paged cache")
	}
	if src.pool != c.pool || src.hidden != c.hidden || src.half != c.half || len(src.k) != len(c.k) {
		return fmt.Errorf("model: MapFrom across incompatible caches")
	}
	if rows < 0 || rows > src.length {
		return fmt.Errorf("model: MapFrom %d rows from a %d-row cache", rows, src.length)
	}
	if rows == 0 {
		return nil
	}
	nb := (rows + c.blockTok - 1) / c.blockTok
	for l := range c.k {
		for b := 0; b < nb; b++ {
			c.pool.Retain(src.k[l][b])
			c.pool.Retain(src.v[l][b])
			c.k[l] = append(c.k[l], src.k[l][b])
			c.v[l] = append(c.v[l], src.v[l][b])
			c.owned[l] = append(c.owned[l], false)
		}
	}
	c.length = rows
	return nil
}

// EnsureAppendable guarantees the next AppendRow/Advance round has an
// exclusively writable row in every layer's K and V: it acquires boundary
// blocks when length sits on a block edge and copy-on-writes any tail block
// this cache cannot write. All-or-nothing: when the pool cannot supply
// every needed block it returns false with the cache unchanged — the
// serving loop's cue to scavenge the prefix cache or preempt a session and
// retry. Idempotent: need is re-derived from committed state, so calling it
// again after a mid-step eviction or a false return is safe.
func (c *BlockKVCache) EnsureAppendable() bool {
	bi := c.length / c.blockTok

	// Phase 1: derive the work list from committed state.
	type work struct {
		layer int
		isV   bool
		cow   bool // replace the read-only tail (vs append a fresh boundary block)
	}
	var items []work
	for l := range c.k {
		for _, isV := range [2]bool{false, true} {
			table := c.k[l]
			if isV {
				table = c.v[l]
			}
			switch {
			case len(table) <= bi:
				items = append(items, work{l, isV, false})
			case !c.owned[l][bi] || table[bi].Shared():
				items = append(items, work{l, isV, true})
			}
		}
	}
	if len(items) == 0 {
		return true
	}

	// Phase 2: acquire every block, or release what was acquired and fail
	// with the tables untouched.
	blocks := make([]*allocator.Block, len(items))
	for i, w := range items {
		var b *allocator.Block
		if w.cow {
			b = c.pool.AllocCoW()
		} else {
			b = c.pool.Alloc()
		}
		if b == nil {
			for _, a := range blocks[:i] {
				c.pool.Release(a)
			}
			return false
		}
		blocks[i] = b
	}

	// Phase 3: apply (infallible).
	tailElems := (c.length % c.blockTok) * c.hidden
	for i, w := range items {
		table := &c.k[w.layer]
		if w.isV {
			table = &c.v[w.layer]
		}
		b := blocks[i]
		if w.cow {
			old := (*table)[bi]
			if c.half {
				copy(b.DataU16()[:tailElems], old.DataU16()[:tailElems])
				c.pool.Commit(b, int64(tailElems)*2)
			} else {
				copy(b.Data()[:tailElems], old.Data()[:tailElems])
				c.pool.Commit(b, int64(tailElems)*4)
			}
			c.pool.Release(old)
			(*table)[bi] = b
		} else {
			*table = append(*table, b)
		}
	}
	for l := range c.owned {
		for len(c.owned[l]) <= bi {
			c.owned[l] = append(c.owned[l], false)
		}
		c.owned[l][bi] = true
	}
	return true
}

// AppendRow stores one token's K and V rows for the given layer at the next
// position, like KVCache.AppendRow. The caller must have run
// EnsureAppendable for this step; appending without capacity or into a
// block another cache can see panics. Gauges do not move until Advance.
func (c *BlockKVCache) AppendRow(layer int, kRow, vRow []float32) {
	if len(kRow) != c.hidden || len(vRow) != c.hidden {
		panic(fmt.Sprintf("model: KV row size %d/%d, want %d", len(kRow), len(vRow), c.hidden))
	}
	bi, off := c.length/c.blockTok, (c.length%c.blockTok)*c.hidden
	kt, vt := c.k[layer], c.v[layer]
	if bi >= len(kt) || bi >= len(vt) || !c.owned[layer][bi] {
		panic("model: AppendRow without EnsureAppendable")
	}
	kb, vb := kt[bi], vt[bi]
	if kb.Shared() || vb.Shared() {
		panic("model: AppendRow into a shared block")
	}
	if c.half {
		tensor.EncodeF16Slice(kb.DataU16()[off:off+c.hidden], kRow)
		tensor.EncodeF16Slice(vb.DataU16()[off:off+c.hidden], vRow)
		return
	}
	copy(kb.Data()[off:off+c.hidden], kRow)
	copy(vb.Data()[off:off+c.hidden], vRow)
}

// Advance commits the row appended to every layer this step, charging the
// KV-used gauge one row across all layers' K and V blocks.
func (c *BlockKVCache) Advance() {
	bi := c.length / c.blockTok
	rb := c.rowBytes()
	for l := range c.k {
		c.pool.Commit(c.k[l][bi], rb)
		c.pool.Commit(c.v[l][bi], rb)
	}
	c.length++
}

// KBlocks appends layer l's key blocks covering tokens rows (tokens may
// include the row appended but not yet advanced) to dst — each a
// full-capacity block slice, the layout kernels.AttentionBlocked reads
// through. Append-style so the decode scratch can reuse one backing array
// across sessions and steps. Panics on a binary16 cache — use KBlocksH.
func (c *BlockKVCache) KBlocks(dst [][]float32, l, tokens int) [][]float32 {
	if c.half {
		panic("model: KBlocks on a binary16 paged cache; use KBlocksH")
	}
	return appendBlockSlices(dst, c.k[l], tokens, c.blockTok)
}

// VBlocks appends layer l's value blocks, like KBlocks.
func (c *BlockKVCache) VBlocks(dst [][]float32, l, tokens int) [][]float32 {
	if c.half {
		panic("model: VBlocks on a binary16 paged cache; use VBlocksH")
	}
	return appendBlockSlices(dst, c.v[l], tokens, c.blockTok)
}

func appendBlockSlices(dst [][]float32, table []*allocator.Block, tokens, blockTok int) [][]float32 {
	nb := (tokens + blockTok - 1) / blockTok
	for b := 0; b < nb; b++ {
		dst = append(dst, table[b].Data())
	}
	return dst
}

// KBlocksH appends layer l's key blocks as binary16 storage (fp16 caches
// only), the layout kernels.AttentionBlockedF16 reads through.
func (c *BlockKVCache) KBlocksH(dst []blas.Half, l, tokens int) []blas.Half {
	if !c.half {
		panic("model: KBlocksH on an fp32 paged cache; use KBlocks")
	}
	return appendBlockSlicesU16(dst, c.k[l], tokens, c.blockTok)
}

// VBlocksH appends layer l's value blocks, like KBlocksH.
func (c *BlockKVCache) VBlocksH(dst []blas.Half, l, tokens int) []blas.Half {
	if !c.half {
		panic("model: VBlocksH on an fp32 paged cache; use VBlocks")
	}
	return appendBlockSlicesU16(dst, c.v[l], tokens, c.blockTok)
}

func appendBlockSlicesU16(dst []blas.Half, table []*allocator.Block, tokens, blockTok int) []blas.Half {
	nb := (tokens + blockTok - 1) / blockTok
	for b := 0; b < nb; b++ {
		dst = append(dst, table[b].DataU16())
	}
	return dst
}

// Free releases every held block back to the pool (the pool adjusts both
// gauges for blocks whose last holder leaves). Idempotent.
func (c *BlockKVCache) Free() {
	if c.k == nil {
		return
	}
	for l := range c.k {
		for _, b := range c.k[l] {
			c.pool.Release(b)
		}
		for _, b := range c.v[l] {
			c.pool.Release(b)
		}
	}
	c.k, c.v, c.owned = nil, nil, nil
	c.length = 0
}
