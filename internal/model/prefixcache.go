package model

import (
	"sync"

	"repro/internal/allocator"
)

// ccRef is a reference-counted, device-accounted handle on a crossCache.
// The projected encoder memory is real KV storage — per layer a [srcLen,
// hidden] K and V — so it is charged to the device's KV gauges exactly once
// however many sessions share it (prompt-identical requests through the
// prefix cache), and released when the last holder closes. This is the
// other half of the one-ledger reconciliation: with the prompt rows
// accounted here and the decode grant accounted in the KV cache, the
// device's KV-reserved gauge equals the continuous scheduler's
// ReservedTokens (PromptLen + MaxNew) in bytes.
type ccRef struct {
	cc    *crossCache
	dev   *allocator.Device
	bytes int64

	mu   sync.Mutex
	refs int
}

// newCCRef wraps cc, charging its footprint to the device KV gauges.
func newCCRef(dev *allocator.Device, cc *crossCache, hidden int) *ccRef {
	r := &ccRef{
		cc:    cc,
		dev:   dev,
		bytes: int64(cc.srcLen) * int64(cc.layers()) * 2 * int64(hidden) * cc.elemBytes(),
		refs:  1,
	}
	dev.AddKVReserved(r.bytes)
	dev.AddKVUsed(r.bytes)
	return r
}

func (r *ccRef) retain() *ccRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refs < 1 {
		panic("model: retain of a released cross cache")
	}
	r.refs++
	return r
}

func (r *ccRef) release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refs < 1 {
		panic("model: double release of a cross cache")
	}
	r.refs--
	if r.refs == 0 {
		r.dev.AddKVReserved(-r.bytes)
		r.dev.AddKVUsed(-r.bytes)
	}
}

// hashPrompt is FNV-1a over the prompt's token IDs. The encoder is
// bidirectional — memory[t] depends on the WHOLE prompt — so sharing is
// keyed on the full token sequence, never a proper prefix of it; entries
// additionally store the exact tokens as a collision guard.
func hashPrompt(toks []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range toks {
		u := uint64(t)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	return h
}

func sameProm(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prefixEntry is one retired generation keyed by its full prompt: the
// shared cross cache (encoder skip on hit), the greedy token stream it
// produced (replay), and — until scavenged — its paged decode KV (mapped by
// continuations past the cached stream). Greedy decoding is deterministic,
// so replay and continuation are bit-identical to recomputing.
type prefixEntry struct {
	prompt  []int
	ccr     *ccRef
	toks    []int
	hitEos  bool
	kv      *BlockKVCache // nil once scavenged (toks still replayable)
	lastUse int64
}

// PrefixCacheStats is a point-in-time snapshot of prefix-cache activity.
type PrefixCacheStats struct {
	Entries    int
	Hits       int64 // sessions opened against a cached prompt
	Misses     int64 // paged sessions whose prompt was unknown
	Evictions  int64 // entries dropped by LRU capacity
	Scavenges  int64 // entries whose decode KV was dropped under pool pressure
	CCShared   int   // cached cross caches currently also held by live sessions
	KVEntries  int   // entries still holding decode KV blocks
	KVBlocks   int   // pool blocks held by cached entries
	ReplayToks int64 // tokens answered from cache instead of decoded
}

// PrefixCache maps full prompts to retired generations (the WeChat FAQ
// workload: a fixed question set asked over and over). Owned by the
// Generator and confined to the decode loop's goroutine, like sessions.
type PrefixCache struct {
	cap     int
	entries map[uint64]*prefixEntry
	tick    int64

	hits, misses, evictions, scavenges, replayToks int64
}

// newPrefixCache builds a cache holding at most capacity retired prompts.
func newPrefixCache(capacity int) *PrefixCache {
	if capacity < 1 {
		capacity = 64
	}
	return &PrefixCache{cap: capacity, entries: map[uint64]*prefixEntry{}}
}

// lookup returns the entry for the exact prompt, bumping its LRU stamp.
func (pc *PrefixCache) lookup(prompt []int) *prefixEntry {
	e := pc.entries[hashPrompt(prompt)]
	if e == nil || !sameProm(e.prompt, prompt) {
		return nil
	}
	pc.tick++
	e.lastUse = pc.tick
	return e
}

// dropEntry releases everything an entry holds.
func (pc *PrefixCache) dropEntry(key uint64, e *prefixEntry) {
	if e.kv != nil {
		e.kv.Free()
		e.kv = nil
	}
	e.ccr.release()
	delete(pc.entries, key)
}

// insert stores (or upgrades) the entry for prompt, taking ownership of ccr
// and kv. Returns false — ownership NOT taken — when an existing entry
// already covers at least as many tokens.
func (pc *PrefixCache) insert(prompt []int, ccr *ccRef, toks []int, hitEos bool, kv *BlockKVCache) bool {
	key := hashPrompt(prompt)
	if old := pc.entries[key]; old != nil {
		if !sameProm(old.prompt, prompt) || len(old.toks) >= len(toks) {
			return false // hash collision (keep first) or no upgrade
		}
		pc.dropEntry(key, old)
	}
	pc.tick++
	pc.entries[key] = &prefixEntry{
		prompt:  append([]int(nil), prompt...),
		ccr:     ccr,
		toks:    append([]int(nil), toks...),
		hitEos:  hitEos,
		kv:      kv,
		lastUse: pc.tick,
	}
	for len(pc.entries) > pc.cap {
		pc.evictOldest()
	}
	return true
}

func (pc *PrefixCache) evictOldest() {
	var oldKey uint64
	var old *prefixEntry
	for k, e := range pc.entries {
		if old == nil || e.lastUse < old.lastUse {
			oldKey, old = k, e
		}
	}
	if old != nil {
		pc.dropEntry(oldKey, old)
		pc.evictions++
	}
}

// scavenge drops decode KV from least-recently-used entries until at least
// need pool blocks were freed (or nothing is left to drop), returning the
// number freed. Token streams stay replayable; only continuation-by-
// mapping is lost.
func (pc *PrefixCache) scavenge(need int) int {
	freed := 0
	for freed < need {
		var victim *prefixEntry
		for _, e := range pc.entries {
			if e.kv == nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		freed += victim.kv.Blocks()
		victim.kv.Free()
		victim.kv = nil
		pc.scavenges++
	}
	return freed
}

// drop releases every entry (generator shutdown).
func (pc *PrefixCache) drop() {
	for k, e := range pc.entries {
		pc.dropEntry(k, e)
	}
}

// stats snapshots the cache's counters.
func (pc *PrefixCache) stats() PrefixCacheStats {
	st := PrefixCacheStats{
		Entries:    len(pc.entries),
		Hits:       pc.hits,
		Misses:     pc.misses,
		Evictions:  pc.evictions,
		Scavenges:  pc.scavenges,
		ReplayToks: pc.replayToks,
	}
	for _, e := range pc.entries {
		if e.kv != nil {
			st.KVEntries++
			st.KVBlocks += e.kv.Blocks()
		}
		e.ccr.mu.Lock()
		if e.ccr.refs > 1 {
			st.CCShared++
		}
		e.ccr.mu.Unlock()
	}
	return st
}
