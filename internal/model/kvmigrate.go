package model

import (
	"fmt"

	"repro/internal/blas"
)

// SessionSnapshot is a GenSession serialized for migration between engines
// — the KV hand-off payload of prefill/decode disaggregation. It carries
// everything a decode replica needs to resume the session exactly where
// the prefill replica stopped: the control state (token stream, position,
// budget), the projected cross-attention memory, and every committed
// self-attention KV row, all as raw bits. fp16 rows travel as their
// binary16 storage words (never decoded through float32), so an imported
// session's caches are byte-for-byte the exporter's and greedy decode
// continues bit-identically on the other side.
//
// A snapshot holds no device memory — it is plain heap data. The exporter
// frees its device-side state the moment the copy exists (Close), so the
// mid-migration window charges neither replica's allocator gauges.
type SessionSnapshot struct {
	ID     int64
	Prompt []int // prompt tokens (paged sessions; nil on contiguous)
	Toks   []int // generated tokens so far, EOS included if hit
	Next   int   // token fed at the next step
	Pos    int   // next decode position
	MaxNew int   // decode budget (the admission grant the importer re-reserves)
	Done   bool

	Half   bool // binary16 storage on both cache kinds
	Hidden int
	Layers int

	// Cross-attention memory: per layer one [SrcLen*Hidden] K and V slab.
	// Exactly one of the fp32/fp16 pairs is populated, matching Half.
	SrcLen           int
	CrossK, CrossV   [][]float32
	CrossKH, CrossVH [][]uint16

	// Self-attention KV: KVLen committed rows per layer, same layout.
	KVLen          int
	SelfK, SelfV   [][]float32
	SelfKH, SelfVH [][]uint16
}

// Bytes returns the KV payload size of the snapshot — the figure the
// router's kv_migrated_bytes counter and the migration cost model price. It
// equals the device KV-used bytes the session occupied at export (cross
// rows plus committed self rows), so migrated-bytes totals reconcile
// directly against the allocator gauges.
func (s *SessionSnapshot) Bytes() int64 {
	elem := int64(4)
	if s.Half {
		elem = 2
	}
	return int64(s.SrcLen+s.KVLen) * int64(s.Layers) * 2 * int64(s.Hidden) * elem
}

// appendRowH stores one raw binary16 K/V row for the given layer, the
// import-side twin of AppendRow: no float32 round trip, so imported rows
// are the exporter's exact storage words (NaN payloads and all).
func (c *KVCache) appendRowH(layer int, kRow, vRow []uint16) {
	if !c.half {
		panic("model: appendRowH on an fp32 KV cache")
	}
	if len(kRow) != c.hidden || len(vRow) != c.hidden {
		panic(fmt.Sprintf("model: KV row size %d/%d, want %d", len(kRow), len(vRow), c.hidden))
	}
	if c.length+1 > c.capTok {
		c.grow(c.length + 1)
	}
	off := c.length * c.hidden
	copy(c.k[layer].DataU16()[off:off+c.hidden], kRow)
	copy(c.v[layer].DataU16()[off:off+c.hidden], vRow)
}

// appendRowH is KVCache.appendRowH for the paged cache: raw binary16 rows,
// same EnsureAppendable contract as AppendRow.
func (c *BlockKVCache) appendRowH(layer int, kRow, vRow []uint16) {
	if !c.half {
		panic("model: appendRowH on an fp32 paged cache")
	}
	if len(kRow) != c.hidden || len(vRow) != c.hidden {
		panic(fmt.Sprintf("model: KV row size %d/%d, want %d", len(kRow), len(vRow), c.hidden))
	}
	bi, off := c.length/c.blockTok, (c.length%c.blockTok)*c.hidden
	kt, vt := c.k[layer], c.v[layer]
	if bi >= len(kt) || bi >= len(vt) || !c.owned[layer][bi] {
		panic("model: appendRowH without EnsureAppendable")
	}
	kb, vb := kt[bi], vt[bi]
	if kb.Shared() || vb.Shared() {
		panic("model: appendRowH into a shared block")
	}
	copy(kb.DataU16()[off:off+c.hidden], kRow)
	copy(vb.DataU16()[off:off+c.hidden], vRow)
}

// Export snapshots the session's full state as plain heap data — the
// first half of a KV hand-off. The session itself is untouched (the caller
// detaches it by closing it once the snapshot is delivered); exporting at
// an iteration boundary is the caller's responsibility, like every other
// session operation. Only open sessions export.
func (s *GenSession) Export() (*SessionSnapshot, error) {
	if s.cc == nil || (s.kv == nil && s.pkv == nil) {
		return nil, fmt.Errorf("model: export of a closed session %d", s.ID)
	}
	var hidden, layers int
	if s.pkv != nil {
		hidden, layers = s.pkv.hidden, len(s.pkv.k)
	} else {
		hidden, layers = s.kv.hidden, len(s.kv.k)
	}
	snap := &SessionSnapshot{
		ID:     s.ID,
		Prompt: append([]int(nil), s.prompt...),
		Toks:   append([]int(nil), s.toks...),
		Next:   s.next,
		Pos:    s.pos,
		MaxNew: s.maxNew,
		Done:   s.done,
		Half:   s.cc.half,
		Hidden: hidden,
		Layers: layers,
		SrcLen: s.cc.srcLen,
	}

	// Cross cache: deep-copy the per-layer slabs on the active numeric route.
	if s.cc.half {
		for l := 0; l < layers; l++ {
			snap.CrossKH = append(snap.CrossKH, append([]uint16(nil), s.cc.kh[l]...))
			snap.CrossVH = append(snap.CrossVH, append([]uint16(nil), s.cc.vh[l]...))
		}
	} else {
		for l := 0; l < layers; l++ {
			snap.CrossK = append(snap.CrossK, append([]float32(nil), s.cc.k[l]...))
			snap.CrossV = append(snap.CrossV, append([]float32(nil), s.cc.v[l]...))
		}
	}

	// Self KV: every committed row, raw. Right after prefill this is empty —
	// the dominant hand-off migrates only the cross memory — but a mid-flight
	// export (tests, future live migration) carries the full context.
	switch {
	case s.pkv != nil:
		n, bt := s.pkv.length, s.pkv.blockTok
		snap.KVLen = n
		for l := 0; l < layers; l++ {
			if snap.Half {
				kf := make([]uint16, n*hidden)
				vf := make([]uint16, n*hidden)
				for t := 0; t < n; {
					rows := bt
					if n-t < rows {
						rows = n - t
					}
					bi := t / bt
					copy(kf[t*hidden:(t+rows)*hidden], s.pkv.k[l][bi].DataU16()[:rows*hidden])
					copy(vf[t*hidden:(t+rows)*hidden], s.pkv.v[l][bi].DataU16()[:rows*hidden])
					t += rows
				}
				snap.SelfKH = append(snap.SelfKH, kf)
				snap.SelfVH = append(snap.SelfVH, vf)
			} else {
				kf := make([]float32, n*hidden)
				vf := make([]float32, n*hidden)
				for t := 0; t < n; {
					rows := bt
					if n-t < rows {
						rows = n - t
					}
					bi := t / bt
					copy(kf[t*hidden:(t+rows)*hidden], s.pkv.k[l][bi].Data()[:rows*hidden])
					copy(vf[t*hidden:(t+rows)*hidden], s.pkv.v[l][bi].Data()[:rows*hidden])
					t += rows
				}
				snap.SelfK = append(snap.SelfK, kf)
				snap.SelfV = append(snap.SelfV, vf)
			}
		}
	default:
		n := s.kv.length
		snap.KVLen = n
		for l := 0; l < layers; l++ {
			if snap.Half {
				snap.SelfKH = append(snap.SelfKH, append([]uint16(nil), s.kv.k[l].DataU16()[:n*hidden]...))
				snap.SelfVH = append(snap.SelfVH, append([]uint16(nil), s.kv.v[l].DataU16()[:n*hidden]...))
			} else {
				snap.SelfK = append(snap.SelfK, append([]float32(nil), s.kv.k[l].Data()[:n*hidden]...))
				snap.SelfV = append(snap.SelfV, append([]float32(nil), s.kv.v[l].Data()[:n*hidden]...))
			}
		}
	}
	return snap, nil
}

// ImportSession rebuilds a session from a snapshot on THIS generator's
// device — the second half of a KV hand-off. The cross cache is recreated
// and charged to the local KV gauges (newCCRef), and every self-KV row is
// replayed through the exact append/commit path local decode uses
// (EnsureAppendable → raw append → Advance), so the importing device's
// reserved and used gauges move byte-for-byte as if the session had
// decoded here from the start. The snapshot is not consumed and may be
// imported again (each import deep-copies).
//
// The destination must run the same geometry and numeric route as the
// exporter; a paged destination that cannot supply the blocks returns
// ErrKVPoolExhausted with nothing held.
func (g *Generator) ImportSession(snap *SessionSnapshot) (*GenSession, error) {
	if snap == nil {
		return nil, fmt.Errorf("model: import of a nil snapshot")
	}
	if snap.Hidden != g.Cfg.Hidden || snap.Layers != g.Cfg.Layers {
		return nil, fmt.Errorf("model %s: snapshot geometry %dx%d, want %dx%d",
			g.Cfg.Name, snap.Layers, snap.Hidden, g.Cfg.Layers, g.Cfg.Hidden)
	}
	if snap.Half != g.dec.fp16 {
		return nil, fmt.Errorf("model %s: snapshot numeric route half=%v, engine half=%v",
			g.Cfg.Name, snap.Half, g.dec.fp16)
	}
	h := snap.Hidden

	// Rebuild the cross cache from the raw slabs and account it locally.
	cc := &crossCache{half: snap.Half, srcLen: snap.SrcLen}
	if snap.Half {
		for l := 0; l < snap.Layers; l++ {
			cc.kh = append(cc.kh, blas.Half(append([]uint16(nil), snap.CrossKH[l]...)))
			cc.vh = append(cc.vh, blas.Half(append([]uint16(nil), snap.CrossVH[l]...)))
		}
	} else {
		for l := 0; l < snap.Layers; l++ {
			cc.k = append(cc.k, append([]float32(nil), snap.CrossK[l]...))
			cc.v = append(cc.v, append([]float32(nil), snap.CrossV[l]...))
		}
	}
	ccr := newCCRef(g.dev, cc, h)

	s := &GenSession{
		ID:     snap.ID,
		cc:     cc,
		ccr:    ccr,
		prompt: append([]int(nil), snap.Prompt...),
		toks:   append([]int(nil), snap.Toks...),
		next:   snap.Next,
		pos:    snap.Pos,
		maxNew: snap.MaxNew,
		done:   snap.Done,
	}

	// Replay the committed self rows through the normal append path so the
	// local gauges see exactly the charges local decode would have made.
	if g.pool != nil {
		pkv, err := newBlockKVCache(g.pool, snap.Layers, h, snap.Half)
		if err != nil {
			ccr.release()
			return nil, err
		}
		for t := 0; t < snap.KVLen; t++ {
			if !pkv.EnsureAppendable() {
				pkv.Free()
				ccr.release()
				return nil, ErrKVPoolExhausted
			}
			for l := 0; l < snap.Layers; l++ {
				if snap.Half {
					pkv.appendRowH(l, snap.SelfKH[l][t*h:(t+1)*h], snap.SelfVH[l][t*h:(t+1)*h])
				} else {
					pkv.AppendRow(l, snap.SelfK[l][t*h:(t+1)*h], snap.SelfV[l][t*h:(t+1)*h])
				}
			}
			pkv.Advance()
		}
		s.pkv = pkv
		return s, nil
	}

	kv, err := newKVCache(g.dev, snap.Layers, h, snap.MaxNew, snap.Half)
	if err != nil {
		ccr.release()
		return nil, err
	}
	for t := 0; t < snap.KVLen; t++ {
		for l := 0; l < snap.Layers; l++ {
			if snap.Half {
				kv.appendRowH(l, snap.SelfKH[l][t*h:(t+1)*h], snap.SelfVH[l][t*h:(t+1)*h])
			} else {
				kv.AppendRow(l, snap.SelfK[l][t*h:(t+1)*h], snap.SelfV[l][t*h:(t+1)*h])
			}
		}
		kv.Advance()
	}
	s.kv = kv
	return s, nil
}
