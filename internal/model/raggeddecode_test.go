package model

import (
	"math/rand"
	"testing"

	"repro/internal/allocator"
)

// raggedRun drives a fuzzed continuous-batching schedule on g: session i
// joins at joinAt[i], steps raggedly with whoever is live, leaves when done
// (or is force-closed at evictAt[i] if set). Returns each session's stream.
func raggedRun(t *testing.T, g *Generator, mems []int, budgets, joinAt, evictAt []int, seed int64) [][]int {
	t.Helper()
	n := len(mems)
	sessions := make([]*GenSession, n)
	streams := make([][]int, n)
	var live []*GenSession
	started := 0
	for step := 0; step < 512; step++ {
		for i := 0; i < n; i++ {
			if sessions[i] == nil && joinAt[i] == step {
				s, err := g.NewSession(int64(i), testMemory(seed+int64(i), mems[i], g.Cfg.Hidden), budgets[i])
				if err != nil {
					t.Fatal(err)
				}
				sessions[i] = s
				live = append(live, s)
				started++
			}
		}
		if len(live) == 0 {
			if started == n {
				break
			}
			continue
		}
		if _, err := g.Step(live); err != nil {
			t.Fatal(err)
		}
		kept := live[:0]
		for _, s := range live {
			i := int(s.ID)
			// Mid-run eviction: a request whose client vanished leaves the
			// batch even though it is not done.
			if evictAt[i] >= 0 && len(s.Generated()) >= evictAt[i] && !s.Done() {
				streams[i] = append([]int(nil), s.Generated()...)
				s.Close()
				continue
			}
			if s.Done() {
				streams[i] = append([]int(nil), s.Generated()...)
				s.Close()
				continue
			}
			kept = append(kept, s)
		}
		live = kept
	}
	if len(live) != 0 || started != n {
		t.Fatalf("ragged run did not terminate: %d live, %d/%d started", len(live), started, n)
	}
	return streams
}

// TestRaggedDecodeBitIdenticalToPerRowFuzz is the tentpole property test:
// on fuzzed session sets with mixed prompt lengths, mixed context lengths,
// and mid-run admit/evict, the grouped ragged decode path must produce
// BIT-IDENTICAL token streams to the per-row reference attention. Streams
// are compared exactly — any ulp drift in the grouped kernels would surface
// as a diverging argmax somewhere across the fuzz corpus.
func TestRaggedDecodeBitIdenticalToPerRowFuzz(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	cfg := genTestConfig()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 1 + rng.Intn(5)
		mems := make([]int, n)
		budgets := make([]int, n)
		joinAt := make([]int, n)
		evictAt := make([]int, n)
		for i := 0; i < n; i++ {
			mems[i] = 1 + rng.Intn(17)    // mixed prompt lengths
			budgets[i] = 1 + rng.Intn(20) // mixed context budgets
			joinAt[i] = rng.Intn(6)       // staggered admission
			evictAt[i] = -1
			if rng.Intn(4) == 0 { // occasional client-gone eviction
				evictAt[i] = 1 + rng.Intn(8)
			}
		}
		// At least one session must join at step 0 or the run stalls.
		joinAt[0] = 0

		ragged, err := NewGenerator(cfg, 42, allocator.NewDevice())
		if err != nil {
			t.Fatal(err)
		}
		perRow, err := NewGenerator(cfg, 42, allocator.NewDevice())
		if err != nil {
			t.Fatal(err)
		}
		perRow.PerRowAttention = true

		got := raggedRun(t, ragged, mems, budgets, joinAt, evictAt, int64(trial)*31)
		want := raggedRun(t, perRow, mems, budgets, joinAt, evictAt, int64(trial)*31)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("trial %d session %d: ragged %v vs per-row %v", trial, i, got[i], want[i])
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d session %d token %d: ragged %d vs per-row %d",
						trial, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestDecodeScratchPlanReuse: the decode workspace must be planned, reused
// across iterations while the (rows, Σcontext) key fits, and replanned —
// with Malloc/Free visible in device traffic — only when it grows.
func TestDecodeScratchPlanReuse(t *testing.T) {
	cfg := genTestConfig()
	dev := allocator.NewDevice()
	g, err := NewGenerator(cfg, 9, dev)
	if err != nil {
		t.Fatal(err)
	}
	var sessions []*GenSession
	for i := 0; i < 3; i++ {
		s, err := g.NewSession(int64(i), testMemory(int64(i), 4+i, cfg.Hidden), 24)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		defer s.Close()
	}
	if g.Decoder().DecodeScratchBytes() != 0 {
		t.Fatal("scratch allocated before any decode step")
	}
	if _, err := g.Step(sessions); err != nil {
		t.Fatal(err)
	}
	scratch := g.Decoder().DecodeScratchBytes()
	if scratch == 0 {
		t.Fatal("decode scratch not device-accounted")
	}
	// The workspace shows up in the same MemoryStats as the KV caches.
	var kv int64
	for _, s := range sessions {
		kv += s.KVBytes()
	}
	if live := dev.Snapshot().LiveBytes; live != kv+scratch {
		t.Fatalf("live %d != kv %d + scratch %d", live, kv, scratch)
	}
	// Steady decode within the plan must not touch the allocator.
	before := dev.Snapshot().AllocCount
	for step := 0; step < 5; step++ {
		for _, s := range sessions {
			if s.Done() {
				t.Skip("stream ended before plan-reuse window (EOS); covered by other seeds")
			}
		}
		if _, err := g.Step(sessions); err != nil {
			t.Fatal(err)
		}
	}
	if grew := dev.Snapshot().AllocCount - before; grew != 0 {
		t.Fatalf("decode scratch reallocated %d times inside its plan", grew)
	}
}

// TestKVReservedVsUsedGauges: the device must report the up-front KV
// reservation and the actually-occupied bytes separately, with used ≤
// reserved throughout and both released on Free.
func TestKVReservedVsUsedGauges(t *testing.T) {
	dev := allocator.NewDevice()
	const layers, hidden, grant = 2, 8, 10
	c, err := NewKVCache(dev, layers, hidden, grant)
	if err != nil {
		t.Fatal(err)
	}
	perTok := int64(layers) * 2 * hidden * 4
	snap := dev.Snapshot()
	// One ledger: the reserved gauge carries exactly the admission grant —
	// not the chunk-rounded, headroom-scaled buffer capacity (that slack is
	// capacity and lives in LiveBytes only).
	if snap.KVReservedBytes != grant*perTok {
		t.Fatalf("reserved %d, want the %d-token admission grant (%d)", snap.KVReservedBytes, grant, grant*perTok)
	}
	if c.Bytes() <= snap.KVReservedBytes {
		t.Fatalf("buffer capacity %d not larger than the grant %d — growth headroom missing", c.Bytes(), snap.KVReservedBytes)
	}
	if snap.KVUsedBytes != 0 {
		t.Fatalf("used %d before any token", snap.KVUsedBytes)
	}
	row := make([]float32, hidden)
	for tok := 1; tok <= KVChunkTokens+2; tok++ { // outgrows the grant AND crosses a growth boundary
		for l := 0; l < layers; l++ {
			c.AppendRow(l, row, row)
		}
		c.Advance()
		snap = dev.Snapshot()
		if snap.KVUsedBytes != int64(tok)*perTok {
			t.Fatalf("after %d tokens: used %d, want %d", tok, snap.KVUsedBytes, int64(tok)*perTok)
		}
		if snap.KVUsedBytes > snap.KVReservedBytes {
			t.Fatalf("used %d exceeds reserved %d", snap.KVUsedBytes, snap.KVReservedBytes)
		}
		// Past the grant the reservation extends row by row (admission
		// under-budgeted); within it, it stays pinned to the grant.
		wantRes := int64(grant) * perTok
		if tok > grant {
			wantRes = int64(tok) * perTok
		}
		if snap.KVReservedBytes != wantRes {
			t.Fatalf("after %d tokens: reserved gauge %d, want %d", tok, snap.KVReservedBytes, wantRes)
		}
	}
	c.Free()
	c.Free() // idempotent
	snap = dev.Snapshot()
	if snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
		t.Fatalf("gauges not released: reserved=%d used=%d", snap.KVReservedBytes, snap.KVUsedBytes)
	}
}
