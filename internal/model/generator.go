package model

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/allocator"
	"repro/internal/blas"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Generator drives iteration-level (continuous-batching) autoregressive
// generation on top of the Seq2Seq decoder: unlike BeamSearch, which owns a
// whole request from start to finish, the Generator advances an arbitrary
// set of live sessions by exactly one token per Step call, so a serving
// loop can admit and evict requests between decode iterations.
//
// Every projection is batched across sessions ([rows,H]×[H,N] GEMMs) even
// though the sessions sit at different positions with different context
// lengths — and the ragged parts run grouped: self- and cross-attention
// execute as one kernels.DecodeAttention call per sub-layer, a grouped
// strided-batched GEMM over the flattened (session, head) space with each
// session's own context length as its group shape, plus a packed scaled
// softmax over the concatenated score rows. No session is ever padded to a
// batch-maximum context. Because every (session, head) problem runs the
// same GEMM kernel the per-row oracle uses, a session's token stream is
// bit-identical whether it runs alone, batched with strangers, or through
// the PerRowAttention reference path.
//
// Step draws its activations from the decoder's device-accounted decode
// scratch, so concurrent Step calls on one Generator serialise on that
// workspace — the serving loop is single-threaded by design. Sessions may
// be created and closed from any goroutine.
type Generator struct {
	Cfg Config
	dec *Decoder
	dev *allocator.Device

	// PerRowAttention selects the reference oracle: per-session single-query
	// attention (Decoder.attend) instead of the grouped ragged kernels.
	// Token streams are bit-identical either way — property tests and the
	// gen-decode benchmark pin it.
	PerRowAttention bool

	// Paged-KV mode (EnablePagedKV): sessions draw fixed-size KV blocks from
	// pool instead of contiguous worst-case buffers, and prefix caches
	// retired generations for prompt-identical reuse.
	pool   *allocator.BlockPool
	prefix *PrefixCache

	// fusedLaunches counts the fused attention kernel chains the fp16 route
	// has dispatched (score-GEMM-with-fused-scale + softmax-cast + context
	// product as one grouped call per sub-layer). Exposed via /v1/stats.
	fusedLaunches atomic.Int64
}

// ErrKVPoolExhausted is returned by Step when a paged session cannot
// acquire the blocks its next row needs. The serving loop reacts by
// scavenging the prefix cache or preempting a session, then retries — it
// pre-ensures block capacity before stepping, so Step itself should never
// see this unless the pool is undersized for even one request.
var ErrKVPoolExhausted = fmt.Errorf("model: KV block pool exhausted")

// EnablePagedKV switches the generator to paged KV: sessions opened with
// NewPagedSession page their self-attention cache through pool, and up to
// prefixCap retired generations are kept for prompt-identical reuse
// (encoder skip, token replay, and block-table sharing). Must be called
// before any session is opened.
func (g *Generator) EnablePagedKV(pool *allocator.BlockPool, prefixCap int) {
	g.pool = pool
	g.prefix = newPrefixCache(prefixCap)
}

// Paged reports whether EnablePagedKV was called.
func (g *Generator) Paged() bool { return g.pool != nil }

// BlockPool returns the paged-KV block pool (nil in legacy mode).
func (g *Generator) BlockPool() *allocator.BlockPool { return g.pool }

// PrefixStats snapshots prefix-cache activity (zero value in legacy mode).
func (g *Generator) PrefixStats() PrefixCacheStats {
	if g.prefix == nil {
		return PrefixCacheStats{}
	}
	return g.prefix.stats()
}

// PrefixKnown reports whether the prefix cache holds an entry for this
// exact prompt — the prefill loop's peek for deciding which admitted
// prompts can skip the encoder pass. Hit/miss counters move only when a
// session is actually opened (NewPagedSession).
func (g *Generator) PrefixKnown(prompt []int) bool {
	return g.prefix != nil && g.prefix.lookup(prompt) != nil
}

// ScavengePrefix drops retired decode KV from least-recently-used prefix
// entries until at least need pool blocks come free, returning the number
// freed. Cached token streams stay replayable.
func (g *Generator) ScavengePrefix(need int) int {
	if g.prefix == nil {
		return 0
	}
	return g.prefix.scavenge(need)
}

// ClosePrefix releases every retired entry (server shutdown). The pool can
// be Closed once live sessions are closed too.
func (g *Generator) ClosePrefix() {
	if g.prefix != nil {
		g.prefix.drop()
	}
}

// KVRowBytes is the device footprint one token of decoder context costs
// across all layers' K and V — the unit converting the continuous
// scheduler's token ledger into the device's KV byte gauges. The fp16 fast
// path halves it: binary16 rows cost 2 bytes per element, so the same
// device budget admits ~2× the context tokens.
func (g *Generator) KVRowBytes() int64 {
	elem := int64(4)
	if g.dec.fp16 {
		elem = 2
	}
	return int64(g.Cfg.Layers) * 2 * int64(g.Cfg.Hidden) * elem
}

// EnableFP16 switches generation to the binary16 fast path: weights encoded
// once, KV caches (self and cross) stored as binary16, decode attention
// dispatched through the fused fp16 kernel chains. Must be called before
// any session is opened. Idempotent.
func (g *Generator) EnableFP16() { g.dec.EnableFP16() }

// FP16Enabled reports whether the fp16 fast path is active.
func (g *Generator) FP16Enabled() bool { return g.dec.fp16 }

// FusedLaunches returns how many fused attention kernel chains the fp16
// route has dispatched.
func (g *Generator) FusedLaunches() int64 { return g.fusedLaunches.Load() }

// NewGenerator builds a generator around a decoder configuration. KV-cache
// buffers and the decode scratch are accounted on dev.
func NewGenerator(cfg Config, seed int64, dev *allocator.Device) (*Generator, error) {
	dec, err := NewDecoder(cfg, seed)
	if err != nil {
		return nil, err
	}
	if dev == nil {
		dev = allocator.NewDevice()
	}
	// Rebind the decoder's workspace to the shared device so decode
	// activations are visible in the same MemoryStats as KV caches.
	dec.scr = newDecodeScratch(dev)
	return &Generator{Cfg: cfg, dec: dec, dev: dev}, nil
}

// Decoder exposes the underlying decoder (for tests comparing against the
// one-shot BeamSearch path).
func (g *Generator) Decoder() *Decoder { return g.dec }

// GenSession is one request's in-flight generation state: its private
// cross-attention memory, its device-accounted KV cache, and the greedy
// token stream so far.
type GenSession struct {
	ID int64

	cc     *crossCache
	ccr    *ccRef        // refcounted, device-accounted handle on cc
	kv     *KVCache      // legacy contiguous cache (nil in paged mode)
	pkv    *BlockKVCache // paged cache (nil in legacy mode)
	prompt []int         // prompt tokens, paged mode only (prefix key)
	toks   []int         // generated tokens, EOS included if hit
	next   int           // token fed at the next step (BOS, then last generated)
	pos    int           // next decode position
	maxNew int
	done   bool
	ctx    context.Context // nil = never cancelled
}

// Bind attaches a lifecycle context to the session. The decode loop driving
// the session checks Cancelled between iterations and evicts the session
// (releasing its KV reservation) within one step of the context ending —
// Step itself never aborts a batch mid-iteration, so cancelling one
// session's context cannot perturb its batch-mates' token streams.
func (s *GenSession) Bind(ctx context.Context) { s.ctx = ctx }

// Cancelled reports whether the session's bound context (if any) has ended
// — the per-iteration check continuous-batching loops make between steps.
func (s *GenSession) Cancelled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// Generated returns the tokens produced so far.
func (s *GenSession) Generated() []int { return s.toks }

// Done reports whether the session hit EOS or its token budget.
func (s *GenSession) Done() bool { return s.done }

// ContextLen returns the number of tokens in the self-attention cache.
func (s *GenSession) ContextLen() int {
	if s.pkv != nil {
		return s.pkv.Len()
	}
	return s.kv.Len()
}

// SrcLen returns the cross-attention memory length (the prompt width).
func (s *GenSession) SrcLen() int { return s.cc.srcLen }

// KVBytes returns the session's current KV-cache device footprint.
func (s *GenSession) KVBytes() int64 {
	if s.pkv != nil {
		return s.pkv.Bytes()
	}
	return s.kv.Bytes()
}

// KVBlocks returns the pool blocks the session holds (0 in legacy mode).
func (s *GenSession) KVBlocks() int {
	if s.pkv == nil {
		return 0
	}
	return s.pkv.Blocks()
}

// EnsureAppendable pre-acquires (and copy-on-writes) whatever blocks the
// session's next decode row needs, returning false when the pool cannot
// supply them — the serving loop's pre-step reservation hook. Always true
// for legacy or finished sessions. Idempotent.
func (s *GenSession) EnsureAppendable() bool {
	if s.pkv == nil || s.done {
		return true
	}
	return s.pkv.EnsureAppendable()
}

// NewSession opens a generation session over encoder memory
// [srcLen, hidden], producing at most maxNew tokens (clamped to the
// decoder's MaxTargetLen). The KV cache is reserved for the full budget up
// front, so admission control can reason about worst-case footprint.
func (g *Generator) NewSession(id int64, memory *tensor.Tensor, maxNew int) (*GenSession, error) {
	if memory.Rank() != 2 || memory.Dim(1) != g.Cfg.Hidden {
		return nil, fmt.Errorf("model %s: memory shape %v, want [srcLen, %d]",
			g.Cfg.Name, memory.Shape(), g.Cfg.Hidden)
	}
	if maxNew <= 0 || maxNew > g.Cfg.MaxTargetLen {
		maxNew = g.Cfg.MaxTargetLen
	}
	newKV := NewKVCache
	if g.dec.fp16 {
		newKV = NewKVCacheF16
	}
	kv, err := newKV(g.dev, g.Cfg.Layers, g.Cfg.Hidden, maxNew)
	if err != nil {
		return nil, err
	}
	ccr := newCCRef(g.dev, g.dec.newCrossCache(memory), g.Cfg.Hidden)
	return &GenSession{
		ID:     id,
		cc:     ccr.cc,
		ccr:    ccr,
		kv:     kv,
		next:   TokBos,
		maxNew: maxNew,
	}, nil
}

// NewPagedSession opens a generation session in paged-KV mode, keyed by the
// prompt's tokens. On a prefix hit (an identical prompt was retired before)
// the cached cross cache is shared — memory may be nil, letting the caller
// skip the encoder pass entirely — the cached greedy stream is replayed up
// to maxNew (bit-identical to decoding, greedy is deterministic), and a
// continuation past it maps the retired block tables copy-free. On a miss,
// memory must be the encoded prompt and decoding starts from scratch over
// an empty block table.
func (g *Generator) NewPagedSession(id int64, prompt []int, memory *tensor.Tensor, maxNew int) (*GenSession, error) {
	if g.pool == nil {
		return nil, fmt.Errorf("model %s: paged session without EnablePagedKV", g.Cfg.Name)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("model %s: paged session needs the prompt tokens", g.Cfg.Name)
	}
	if maxNew <= 0 || maxNew > g.Cfg.MaxTargetLen {
		maxNew = g.Cfg.MaxTargetLen
	}
	entry := g.prefix.lookup(prompt)
	var ccr *ccRef
	switch {
	case entry != nil:
		ccr = entry.ccr.retain()
		g.prefix.hits++
	case memory == nil:
		return nil, fmt.Errorf("model %s: prompt not cached and no memory supplied", g.Cfg.Name)
	default:
		if memory.Rank() != 2 || memory.Dim(1) != g.Cfg.Hidden {
			return nil, fmt.Errorf("model %s: memory shape %v, want [srcLen, %d]",
				g.Cfg.Name, memory.Shape(), g.Cfg.Hidden)
		}
		ccr = newCCRef(g.dev, g.dec.newCrossCache(memory), g.Cfg.Hidden)
		g.prefix.misses++
	}
	newPKV := NewBlockKVCache
	if g.dec.fp16 {
		newPKV = NewBlockKVCacheF16
	}
	pkv, err := newPKV(g.pool, g.Cfg.Layers, g.Cfg.Hidden)
	if err != nil {
		ccr.release()
		return nil, err
	}
	s := &GenSession{
		ID:     id,
		cc:     ccr.cc,
		ccr:    ccr,
		pkv:    pkv,
		prompt: append([]int(nil), prompt...),
		next:   TokBos,
		maxNew: maxNew,
	}
	if entry == nil {
		return s, nil
	}
	replay := len(entry.toks)
	if replay > maxNew {
		replay = maxNew
	}
	if replay == maxNew || entry.hitEos {
		// The cached stream answers the request outright: budget reached, or
		// the cache holds the full stream to EOS. Born done, zero decode.
		s.toks = append(s.toks, entry.toks[:replay]...)
		s.pos = replay
		s.done = true
		g.prefix.replayToks += int64(replay)
		return s, nil
	}
	// Continuation: the cached stream is shorter than the budget and open-
	// ended. Map its block tables (copy-on-write at the tail) and resume
	// exactly where the donor stopped; if the KV was scavenged, fall through
	// to a fresh decode — the shared cross cache still skipped the encoder.
	if entry.kv != nil && entry.kv.Len() == replay && replay > 0 {
		if err := pkv.MapFrom(entry.kv, replay); err != nil {
			ccr.release()
			pkv.Free()
			return nil, err
		}
		s.toks = append(s.toks, entry.toks[:replay]...)
		s.pos = replay
		s.next = entry.toks[replay-1]
		g.prefix.replayToks += int64(replay)
	}
	return s, nil
}

// Retire donates a naturally-completed paged session to the prefix cache —
// its cross cache, token stream, and block tables — instead of freeing
// them, so the next identical prompt replays instead of recomputing. Falls
// back to Close for legacy sessions, unfinished sessions (their stream is
// not a valid replay), or when an existing entry already covers the prompt.
func (g *Generator) Retire(s *GenSession) {
	if s == nil {
		return
	}
	if g.prefix == nil || s.pkv == nil || s.prompt == nil || !s.done {
		s.Close()
		return
	}
	hitEos := len(s.toks) > 0 && s.toks[len(s.toks)-1] == TokEos
	if g.prefix.insert(s.prompt, s.ccr, s.toks, hitEos, s.pkv) {
		// Ownership moved to the cache entry.
		s.ccr, s.pkv, s.kv = nil, nil, nil
		return
	}
	s.Close()
}

// Close releases the session's device memory. Idempotent.
func (s *GenSession) Close() {
	if s.kv != nil {
		s.kv.Free()
		s.kv = nil
	}
	if s.pkv != nil {
		s.pkv.Free()
		s.pkv = nil
	}
	if s.ccr != nil {
		s.ccr.release()
		s.ccr = nil
	}
}

// Step advances every session by one greedy token and returns the token
// chosen for each, in order. Sessions marked done are rejected — the
// continuous scheduler must evict them between iterations.
func (g *Generator) Step(sessions []*GenSession) ([]int, error) {
	if g.dec.fp16 {
		return g.stepF16(sessions)
	}
	rows := len(sessions)
	if rows == 0 {
		return nil, nil
	}
	// Iteration shape: Σ self-context (including the row each session is
	// about to append) and Σ cross-context size the score scratch must hold.
	paged := sessions[0].pkv != nil
	sumSelf, sumCross := 0, 0
	for _, s := range sessions {
		if s.done {
			return nil, fmt.Errorf("model %s: session %d already done", g.Cfg.Name, s.ID)
		}
		if s.kv == nil && s.pkv == nil {
			return nil, fmt.Errorf("model %s: session %d closed", g.Cfg.Name, s.ID)
		}
		if (s.pkv != nil) != paged {
			return nil, fmt.Errorf("model %s: mixed paged and contiguous sessions in one batch", g.Cfg.Name)
		}
		sumSelf += s.ContextLen() + 1
		sumCross += s.cc.srcLen
	}
	// Paged sessions pre-acquire this step's boundary/CoW blocks so the
	// append loop below cannot fail mid-iteration. Serving loops call
	// EnsureAppendable themselves before stepping (to scavenge or preempt on
	// exhaustion); this re-check is then a cheap no-op.
	if paged {
		for _, s := range sessions {
			if !s.pkv.EnsureAppendable() {
				return nil, ErrKVPoolExhausted
			}
		}
	}
	maxCtx := sumSelf
	if sumCross > maxCtx {
		maxCtx = sumCross
	}
	d := g.dec
	h, inter, vocab, heads := g.Cfg.Hidden, g.Cfg.Inter, g.Cfg.Vocab, g.Cfg.Heads
	hd := h / heads
	scale := float32(1 / math.Sqrt(float64(hd)))

	scr := d.scr
	scr.mu.Lock()
	defer scr.mu.Unlock()
	// Drop this iteration's KV references on the way out so an idle
	// generator never pins evicted sessions' caches (LIFO: runs before
	// the unlock above).
	defer scr.clearGather()
	scr.plan(&g.Cfg, rows, maxCtx)
	x := scr.x[:rows*h]
	q := scr.q[:rows*h]
	kNew := scr.k[:rows*h]
	vNew := scr.v[:rows*h]
	ctx := scr.ctx[:rows*h]
	proj := scr.proj[:rows*h]
	interBuf := scr.inter[:rows*inter]

	// Embed every session's next token at its own position.
	pe := scr.pe
	for ri, s := range sessions {
		row := x[ri*h : (ri+1)*h]
		copy(row, d.Embed.Word.Data()[s.next*h:(s.next+1)*h])
		positionEncoding(s.pos, h, pe)
		for i := range row {
			row[i] += pe[i]
		}
	}
	kernels.LayerNorm(x, d.Embed.Gamma.Data(), d.Embed.Beta.Data(), rows, h, 1e-5)

	batchedLinear := func(in []float32, w *tensorMat, out []float32) {
		blas.Gemm(false, false, rows, w.n, w.k, 1, in, w.k, w.data, w.n, 0, out, w.n)
		if w.bias != nil {
			kernels.AddBias(out, w.bias, rows, w.n)
		}
	}

	for l := range d.layers {
		lw := &d.layers[l]

		// Self-attention: batched projections, grouped ragged attention over
		// each session's own cache (per-row oracle when PerRowAttention).
		batchedLinear(x, mat(lw.selfWq, lw.selfBq), q)
		batchedLinear(x, mat(lw.selfWk, lw.selfBk), kNew)
		batchedLinear(x, mat(lw.selfWv, lw.selfBv), vNew)
		switch {
		case g.PerRowAttention && paged:
			for ri, s := range sessions {
				s.pkv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.pkv.Len() + 1 // include the row just appended
				d.attendBlocked(q[ri*h:(ri+1)*h],
					s.pkv.KBlocks(nil, l, T), s.pkv.VBlocks(nil, l, T),
					T, s.pkv.BlockTokens(), ctx[ri*h:(ri+1)*h])
			}
		case g.PerRowAttention:
			for ri, s := range sessions {
				s.kv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.kv.Len() + 1 // include the row just appended
				d.attend(q[ri*h:(ri+1)*h], s.kv.K(l, T), s.kv.V(l, T), T, ctx[ri*h:(ri+1)*h])
			}
		case paged:
			// Grouped blocked attention: the kernels read K/V straight
			// through each session's block tables — no gather copy, and
			// bit-identical to the contiguous grouped path.
			flatK, flatV, counts, lens := scr.gatherBlocked()
			for ri, s := range sessions {
				s.pkv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.pkv.Len() + 1
				before := len(flatK)
				flatK = s.pkv.KBlocks(flatK, l, T)
				flatV = s.pkv.VBlocks(flatV, l, T)
				counts = append(counts, len(flatK)-before)
				lens = append(lens, T)
			}
			kb, vb := scr.kb[:0], scr.vb[:0]
			off := 0
			for _, n := range counts {
				kb = append(kb, flatK[off:off+n])
				vb = append(vb, flatV[off:off+n])
				off += n
			}
			scr.flatKB, scr.flatVB, scr.blkCounts, scr.lens = flatK, flatV, counts, lens
			scr.kb, scr.vb = kb, vb
			scr.ws.AttentionBlocked(q, kb, vb, lens, sessions[0].pkv.BlockTokens(),
				heads, hd, scale, scr.scores[:heads*sumSelf], ctx)
		default:
			keys, vals, lens := scr.gather()
			for ri, s := range sessions {
				s.kv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
				T := s.kv.Len() + 1
				keys = append(keys, s.kv.K(l, T))
				vals = append(vals, s.kv.V(l, T))
				lens = append(lens, T)
			}
			scr.keys, scr.vals, scr.lens = keys, vals, lens
			scr.ws.Attention(q, keys, vals, lens, heads, hd, scale, scr.scores[:heads*sumSelf], ctx)
		}
		batchedLinear(ctx, mat(lw.selfWo, lw.selfBo), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.selfLnG.Data(), lw.selfLnB.Data(), rows, h, 1e-5)

		// Cross-attention against each session's own prompt memory, grouped
		// the same way (ragged srcLen per session).
		batchedLinear(x, mat(lw.crossWq, lw.crossBq), q)
		if g.PerRowAttention {
			for ri, s := range sessions {
				d.attend(q[ri*h:(ri+1)*h], s.cc.k[l], s.cc.v[l], s.cc.srcLen, ctx[ri*h:(ri+1)*h])
			}
		} else {
			keys, vals, lens := scr.gather()
			for _, s := range sessions {
				keys = append(keys, s.cc.k[l])
				vals = append(vals, s.cc.v[l])
				lens = append(lens, s.cc.srcLen)
			}
			scr.keys, scr.vals, scr.lens = keys, vals, lens
			scr.ws.Attention(q, keys, vals, lens, heads, hd, scale, scr.scores[:heads*sumCross], ctx)
		}
		batchedLinear(ctx, mat(lw.crossWo, lw.crossBo), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.crossLnG.Data(), lw.crossLnB.Data(), rows, h, 1e-5)

		// Feed-forward network, batched.
		batchedLinear(x, mat(lw.ffnW1, lw.ffnB1), interBuf)
		kernels.Act(g.Cfg.Act, interBuf)
		batchedLinear(interBuf, mat(lw.ffnW2, lw.ffnB2), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.ffnLnG.Data(), lw.ffnLnB.Data(), rows, h, 1e-5)
	}

	// Vocabulary projection and greedy argmax per session.
	logits := scr.logits[:rows*vocab]
	blas.Gemm(false, false, rows, vocab, h, 1, x, h, d.Proj.Data(), vocab, 0, logits, vocab)
	out := make([]int, rows)
	for ri, s := range sessions {
		tok := argmax(logits[ri*vocab : (ri+1)*vocab])
		out[ri] = tok
		s.toks = append(s.toks, tok)
		if s.pkv != nil {
			s.pkv.Advance()
		} else {
			s.kv.Advance()
		}
		s.pos++
		s.next = tok
		if tok == TokEos || len(s.toks) >= s.maxNew {
			s.done = true
		}
	}
	return out, nil
}

// argmax returns the index of the largest value (first on ties, for
// determinism).
func argmax(vals []float32) int {
	best := 0
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[best] {
			best = i
		}
	}
	return best
}
