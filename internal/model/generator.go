package model

import (
	"fmt"

	"repro/internal/allocator"
	"repro/internal/blas"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Generator drives iteration-level (continuous-batching) autoregressive
// generation on top of the Seq2Seq decoder: unlike BeamSearch, which owns a
// whole request from start to finish, the Generator advances an arbitrary
// set of live sessions by exactly one token per Step call, so a serving
// loop can admit and evict requests between decode iterations.
//
// Every projection is batched across sessions ([rows,H]×[H,N] GEMMs) even
// though the sessions sit at different positions with different context
// lengths — the ragged parts (KV append, attention over each session's own
// cache, its own cross-attention memory) are per-row. Because every GEMM
// row is computed independently, a session's token stream is bit-identical
// whether it runs alone or batched with strangers.
//
// Step reuses grow-only scratch buffers, so concurrent Step calls on one
// Generator are not allowed — the serving loop is single-threaded by
// design. Sessions may be created and closed from any goroutine.
type Generator struct {
	Cfg Config
	dec *Decoder
	dev *allocator.Device

	// Decode-iteration scratch, grown to the largest batch seen. The
	// logits buffer alone is rows×vocab floats; reallocating it per token
	// would dominate the decode loop's garbage.
	scratch struct {
		rows                  int
		x, q, k, v, ctx, proj []float32
		inter, logits         []float32
	}
}

// NewGenerator builds a generator around a decoder configuration. KV-cache
// buffers are accounted on dev.
func NewGenerator(cfg Config, seed int64, dev *allocator.Device) (*Generator, error) {
	dec, err := NewDecoder(cfg, seed)
	if err != nil {
		return nil, err
	}
	if dev == nil {
		dev = allocator.NewDevice()
	}
	return &Generator{Cfg: cfg, dec: dec, dev: dev}, nil
}

// Decoder exposes the underlying decoder (for tests comparing against the
// one-shot BeamSearch path).
func (g *Generator) Decoder() *Decoder { return g.dec }

// GenSession is one request's in-flight generation state: its private
// cross-attention memory, its device-accounted KV cache, and the greedy
// token stream so far.
type GenSession struct {
	ID int64

	cc     *crossCache
	kv     *KVCache
	toks   []int // generated tokens, EOS included if hit
	next   int   // token fed at the next step (BOS, then last generated)
	pos    int   // next decode position
	maxNew int
	done   bool
}

// Generated returns the tokens produced so far.
func (s *GenSession) Generated() []int { return s.toks }

// Done reports whether the session hit EOS or its token budget.
func (s *GenSession) Done() bool { return s.done }

// ContextLen returns the number of tokens in the self-attention cache.
func (s *GenSession) ContextLen() int { return s.kv.Len() }

// KVBytes returns the session's current KV-cache device footprint.
func (s *GenSession) KVBytes() int64 { return s.kv.Bytes() }

// NewSession opens a generation session over encoder memory
// [srcLen, hidden], producing at most maxNew tokens (clamped to the
// decoder's MaxTargetLen). The KV cache is reserved for the full budget up
// front, so admission control can reason about worst-case footprint.
func (g *Generator) NewSession(id int64, memory *tensor.Tensor, maxNew int) (*GenSession, error) {
	if memory.Rank() != 2 || memory.Dim(1) != g.Cfg.Hidden {
		return nil, fmt.Errorf("model %s: memory shape %v, want [srcLen, %d]",
			g.Cfg.Name, memory.Shape(), g.Cfg.Hidden)
	}
	if maxNew <= 0 || maxNew > g.Cfg.MaxTargetLen {
		maxNew = g.Cfg.MaxTargetLen
	}
	return &GenSession{
		ID:     id,
		cc:     g.dec.buildCrossCache(memory),
		kv:     NewKVCache(g.dev, g.Cfg.Layers, g.Cfg.Hidden, maxNew),
		next:   TokBos,
		maxNew: maxNew,
	}, nil
}

// Close releases the session's device memory. Idempotent.
func (s *GenSession) Close() {
	if s.kv != nil {
		s.kv.Free()
		s.kv = nil
	}
}

// Step advances every session by one greedy token and returns the token
// chosen for each, in order. Sessions marked done are rejected — the
// continuous scheduler must evict them between iterations.
func (g *Generator) Step(sessions []*GenSession) ([]int, error) {
	rows := len(sessions)
	if rows == 0 {
		return nil, nil
	}
	for _, s := range sessions {
		if s.done {
			return nil, fmt.Errorf("model %s: session %d already done", g.Cfg.Name, s.ID)
		}
		if s.kv == nil {
			return nil, fmt.Errorf("model %s: session %d closed", g.Cfg.Name, s.ID)
		}
	}
	d := g.dec
	h, inter, vocab := g.Cfg.Hidden, g.Cfg.Inter, g.Cfg.Vocab

	if g.scratch.rows < rows {
		g.scratch.rows = rows
		g.scratch.x = make([]float32, rows*h)
		g.scratch.q = make([]float32, rows*h)
		g.scratch.k = make([]float32, rows*h)
		g.scratch.v = make([]float32, rows*h)
		g.scratch.ctx = make([]float32, rows*h)
		g.scratch.proj = make([]float32, rows*h)
		g.scratch.inter = make([]float32, rows*inter)
		g.scratch.logits = make([]float32, rows*vocab)
	}
	x := g.scratch.x[:rows*h]
	q := g.scratch.q[:rows*h]
	kNew := g.scratch.k[:rows*h]
	vNew := g.scratch.v[:rows*h]
	ctx := g.scratch.ctx[:rows*h]
	proj := g.scratch.proj[:rows*h]
	interBuf := g.scratch.inter[:rows*inter]

	// Embed every session's next token at its own position.
	pe := make([]float32, h)
	for ri, s := range sessions {
		row := x[ri*h : (ri+1)*h]
		copy(row, d.Embed.Word.Data()[s.next*h:(s.next+1)*h])
		positionEncoding(s.pos, h, pe)
		for i := range row {
			row[i] += pe[i]
		}
	}
	kernels.LayerNorm(x, d.Embed.Gamma.Data(), d.Embed.Beta.Data(), rows, h, 1e-5)

	batchedLinear := func(in []float32, w *tensorMat, out []float32) {
		blas.Gemm(false, false, rows, w.n, w.k, 1, in, w.k, w.data, w.n, 0, out, w.n)
		if w.bias != nil {
			kernels.AddBias(out, w.bias, rows, w.n)
		}
	}

	for l := range d.layers {
		lw := &d.layers[l]

		// Self-attention: batched projections, per-session ragged cache.
		batchedLinear(x, mat(lw.selfWq, lw.selfBq), q)
		batchedLinear(x, mat(lw.selfWk, lw.selfBk), kNew)
		batchedLinear(x, mat(lw.selfWv, lw.selfBv), vNew)
		for ri, s := range sessions {
			s.kv.AppendRow(l, kNew[ri*h:(ri+1)*h], vNew[ri*h:(ri+1)*h])
			T := s.kv.Len() + 1 // include the row just appended
			d.attend(q[ri*h:(ri+1)*h], s.kv.K(l, T), s.kv.V(l, T), T, ctx[ri*h:(ri+1)*h])
		}
		batchedLinear(ctx, mat(lw.selfWo, lw.selfBo), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.selfLnG.Data(), lw.selfLnB.Data(), rows, h, 1e-5)

		// Cross-attention against each session's own prompt memory.
		batchedLinear(x, mat(lw.crossWq, lw.crossBq), q)
		for ri, s := range sessions {
			d.attend(q[ri*h:(ri+1)*h], s.cc.k[l], s.cc.v[l], s.cc.srcLen, ctx[ri*h:(ri+1)*h])
		}
		batchedLinear(ctx, mat(lw.crossWo, lw.crossBo), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.crossLnG.Data(), lw.crossLnB.Data(), rows, h, 1e-5)

		// Feed-forward network, batched.
		batchedLinear(x, mat(lw.ffnW1, lw.ffnB1), interBuf)
		kernels.Act(g.Cfg.Act, interBuf)
		batchedLinear(interBuf, mat(lw.ffnW2, lw.ffnB2), proj)
		kernels.AddResidual(x, proj)
		kernels.LayerNorm(x, lw.ffnLnG.Data(), lw.ffnLnB.Data(), rows, h, 1e-5)
	}

	// Vocabulary projection and greedy argmax per session.
	logits := g.scratch.logits[:rows*vocab]
	blas.Gemm(false, false, rows, vocab, h, 1, x, h, d.Proj.Data(), vocab, 0, logits, vocab)
	out := make([]int, rows)
	for ri, s := range sessions {
		tok := argmax(logits[ri*vocab : (ri+1)*vocab])
		out[ri] = tok
		s.toks = append(s.toks, tok)
		s.kv.Advance()
		s.pos++
		s.next = tok
		if tok == TokEos || len(s.toks) >= s.maxNew {
			s.done = true
		}
	}
	return out, nil
}

// argmax returns the index of the largest value (first on ties, for
// determinism).
func argmax(vals []float32) int {
	best := 0
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[best] {
			best = i
		}
	}
	return best
}
