package model

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/allocator"
)

// migrateKind is one of the four KV layouts a snapshot must round-trip
// through bit-identically.
type migrateKind struct {
	name  string
	paged bool
	half  bool
}

var migrateKinds = []migrateKind{
	{"contiguous-fp32", false, false},
	{"paged-fp32", true, false},
	{"contiguous-fp16", false, true},
	{"paged-fp16", true, true},
}

// newMigrateGenerator builds one generator of the given kind on its own
// device (and pool, when paged), with the shared test seed so every
// generator in a trial owns identical weights.
func newMigrateGenerator(t *testing.T, cfg Config, kind migrateKind) (*Generator, *allocator.Device) {
	t.Helper()
	dev := allocator.NewDevice()
	g, err := NewGenerator(cfg, 42, dev)
	if err != nil {
		t.Fatal(err)
	}
	if kind.half {
		g.EnableFP16()
	}
	if kind.paged {
		pool := allocator.NewBlockPool(dev, int64(KVChunkTokens)*int64(cfg.Hidden)*4, 4096)
		g.EnablePagedKV(pool, 0)
	}
	return g, dev
}

// stepAll advances every unfinished session one ragged iteration.
func stepAll(t *testing.T, g *Generator, sessions []*GenSession) {
	t.Helper()
	var live []*GenSession
	for _, s := range sessions {
		if !s.Done() {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return
	}
	if _, err := g.Step(live); err != nil {
		t.Fatal(err)
	}
}

// TestKVHandoffRoundTripFuzz is the hand-off property test: for every cache
// kind (contiguous/paged × fp32/fp16) and fuzzed mixed context lengths, a
// session exported mid-decode must import into a fresh same-weights
// generator with (a) a bit-identical re-export — every KV word, fp16 rows
// as raw binary16, survives the round trip — and (b) a continued stream
// identical to the source session's, on both the same layout and the cross
// layout (the snapshot is layout-free and not consumed by import). All
// destination KV gauges must drain to exactly zero afterwards.
func TestKVHandoffRoundTripFuzz(t *testing.T) {
	cfg := genTestConfig()
	for _, kind := range migrateKinds {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				rng := rand.New(rand.NewSource(int64(100*trial + 7)))
				src, srcDev := newMigrateGenerator(t, cfg, kind)

				// Mixed context lengths: every session gets its own source
				// length, budget, and join step, so exports happen out of a
				// raggedly batched cache, not a lone clean one.
				n := 2 + rng.Intn(3)
				sessions := make([]*GenSession, n)
				for i := range sessions {
					srcLen := 1 + rng.Intn(18)
					budget := 4 + rng.Intn(20)
					s, err := src.NewSession(int64(trial*100+i), testMemory(int64(i*31+trial), srcLen, cfg.Hidden), budget)
					if err != nil {
						t.Fatal(err)
					}
					sessions[i] = s
				}
				for k := rng.Intn(8); k > 0; k-- {
					stepAll(t, src, sessions)
				}

				cross := kind
				cross.paged = !kind.paged
				for i, s := range sessions {
					if s.Done() {
						s.Close()
						continue
					}
					snap, err := s.Export()
					if err != nil {
						t.Fatal(err)
					}

					// (a) Same-layout import must re-export bit-identically.
					dst, dstDev := newMigrateGenerator(t, cfg, kind)
					imported, err := dst.ImportSession(snap)
					if err != nil {
						t.Fatal(err)
					}
					again, err := imported.Export()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(snap, again) {
						t.Fatalf("%s trial %d session %d: snapshot not bit-identical after import/re-export", kind.name, trial, i)
					}

					// (b) The snapshot is not consumed: a second import into
					// the CROSS layout must also continue identically.
					crossDst, crossDev := newMigrateGenerator(t, cfg, cross)
					crossImported, err := crossDst.ImportSession(snap)
					if err != nil {
						t.Fatal(err)
					}

					for !s.Done() {
						stepAll(t, src, sessions[i:i+1])
					}
					for !imported.Done() {
						stepAll(t, dst, []*GenSession{imported})
					}
					for !crossImported.Done() {
						stepAll(t, crossDst, []*GenSession{crossImported})
					}
					want := s.Generated()
					for name, got := range map[string][]int{"same-layout": imported.Generated(), "cross-layout": crossImported.Generated()} {
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%s trial %d session %d (%s): migrated stream %v != source %v", kind.name, trial, i, name, got, want)
						}
					}
					s.Close()
					imported.Close()
					crossImported.Close()
					for name, dev := range map[string]*allocator.Device{"dest": dstDev, "cross-dest": crossDev} {
						snap := dev.Snapshot()
						if snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
							t.Fatalf("%s trial %d session %d: %s KV gauges not drained: reserved=%d used=%d",
								kind.name, trial, i, name, snap.KVReservedBytes, snap.KVUsedBytes)
						}
					}
				}
				if snap := srcDev.Snapshot(); snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
					t.Fatalf("%s trial %d: source KV gauges not drained: reserved=%d used=%d",
						kind.name, trial, snap.KVReservedBytes, snap.KVUsedBytes)
				}
			}
		})
	}
}

// TestKVHandoffSnapshotBytes pins the migration payload accounting the
// router's kv_migrated_bytes counter reconciles against: a snapshot prices
// exactly the KV bytes the session occupied at export — (srcLen + kvLen)
// rows × layers × K and V × hidden × element size.
func TestKVHandoffSnapshotBytes(t *testing.T) {
	cfg := genTestConfig()
	for _, kind := range migrateKinds {
		g, _ := newMigrateGenerator(t, cfg, kind)
		const srcLen = 9
		s, err := g.NewSession(1, testMemory(3, srcLen, cfg.Hidden), 12)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			stepAll(t, g, []*GenSession{s})
		}
		snap, err := s.Export()
		if err != nil {
			t.Fatal(err)
		}
		elem := int64(4)
		if kind.half {
			elem = 2
		}
		want := int64(srcLen+snap.KVLen) * int64(cfg.Layers) * 2 * int64(cfg.Hidden) * elem
		if got := snap.Bytes(); got != want {
			t.Fatalf("%s: snapshot bytes %d, want %d", kind.name, got, want)
		}
		if snap.KVLen == 0 {
			t.Fatalf("%s: expected self-KV rows after 5 steps", kind.name)
		}
		s.Close()
	}
}

// TestKVHandoffExportClosedSession: exporting a closed session must fail
// cleanly instead of reading freed KV.
func TestKVHandoffExportClosedSession(t *testing.T) {
	cfg := genTestConfig()
	g, _ := newMigrateGenerator(t, cfg, migrateKinds[0])
	s, err := g.NewSession(1, testMemory(3, 5, cfg.Hidden), 8)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Export(); err == nil {
		t.Fatal("export of a closed session succeeded")
	}
}

// TestKVHandoffImportValidation: geometry and numeric-route mismatches must
// be refused — importing an fp16 snapshot into an fp32 generator would
// silently re-quantise the KV and break bit-identity.
func TestKVHandoffImportValidation(t *testing.T) {
	cfg := genTestConfig()
	src, _ := newMigrateGenerator(t, cfg, migrateKind{half: true})
	s, err := src.NewSession(1, testMemory(3, 5, cfg.Hidden), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}

	fp32Dst, _ := newMigrateGenerator(t, cfg, migrateKind{})
	if _, err := fp32Dst.ImportSession(snap); err == nil {
		t.Fatal("fp16 snapshot imported into an fp32 generator")
	}

	smallCfg := cfg
	smallCfg.Hidden, smallCfg.Heads, smallCfg.Inter = 16, 2, 32
	smallDst, _ := newMigrateGenerator(t, smallCfg, migrateKind{half: true})
	if _, err := smallDst.ImportSession(snap); err == nil {
		t.Fatal("snapshot imported into a mismatched geometry")
	}
	if _, err := fp32Dst.ImportSession(nil); err == nil {
		t.Fatal("nil snapshot imported")
	}
}
