package model

import (
	"fmt"

	"repro/internal/allocator"
)

// KVChunkTokens is the granularity of KV-cache capacity growth. Like
// Algorithm 1's 2 MB activation chunks, growing in fixed token chunks
// bounds reallocation traffic while keeping slack proportional to the
// chunk, not the sequence.
const KVChunkTokens = 32

// kvGrowthScale mirrors the allocator's K_SCALE: when a cache must grow,
// reserve 20% headroom past the requested length so steady token-by-token
// growth does not reallocate every chunk boundary exactly.
const kvGrowthScale = 1.2

// KVCache is one generation request's self-attention key/value store: per
// layer, a contiguous [tokens, hidden] K and V region. The backing buffers
// are drawn from the simulated device (internal/allocator), so per-request
// KV footprint and reallocation traffic show up in the same Snapshot
// counters the paper's Figures 11–12 track for activations.
//
// Capacity is sequence-length-aware: a session opens with room for its
// expected total length (prompt-proportional, like the paper's zh→en ≈1:1
// heuristic), so the common case never reallocates mid-generation.
type KVCache struct {
	dev    *allocator.Device
	hidden int
	k, v   []*allocator.Buffer // one per layer
	length int                 // tokens currently stored
	capTok int                 // token capacity of every buffer
}

// roundUpTokens applies the growth policy: headroom-scaled and rounded to
// the chunk granularity.
func roundUpTokens(need int) int {
	scaled := int(float64(need) * kvGrowthScale)
	if scaled < need {
		scaled = need
	}
	return (scaled + KVChunkTokens - 1) / KVChunkTokens * KVChunkTokens
}

// NewKVCache reserves device-accounted K/V storage for layers decoder
// layers with the given hidden size, sized for expectTokens total tokens.
func NewKVCache(dev *allocator.Device, layers, hidden, expectTokens int) *KVCache {
	if layers <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("model: invalid KV cache geometry layers=%d hidden=%d", layers, hidden))
	}
	if expectTokens < 1 {
		expectTokens = 1
	}
	c := &KVCache{dev: dev, hidden: hidden, capTok: roundUpTokens(expectTokens)}
	bytes := int64(c.capTok) * int64(hidden) * 4
	for l := 0; l < layers; l++ {
		c.k = append(c.k, dev.Malloc(bytes))
		c.v = append(c.v, dev.Malloc(bytes))
	}
	// The whole up-front reservation is what admission control budgeted for
	// this session; Advance moves bytes from reserved-only to used.
	dev.AddKVReserved(c.Bytes())
	return c
}

// rowBytes is the device footprint one committed token adds across all
// layers' K and V buffers.
func (c *KVCache) rowBytes() int64 {
	return int64(len(c.k)) * 2 * int64(c.hidden) * 4
}

// UsedBytes returns the bytes actually occupied by committed context rows
// (≤ Bytes(), the reservation).
func (c *KVCache) UsedBytes() int64 {
	return int64(c.length) * c.rowBytes()
}

// Len returns the number of tokens stored.
func (c *KVCache) Len() int { return c.length }

// CapTokens returns the current token capacity.
func (c *KVCache) CapTokens() int { return c.capTok }

// Bytes returns the cache's total device footprint.
func (c *KVCache) Bytes() int64 {
	var total int64
	for _, b := range c.k {
		total += b.Size
	}
	for _, b := range c.v {
		total += b.Size
	}
	return total
}

// grow reallocates every layer's buffers to hold at least need tokens,
// copying live rows. The Malloc/Free pair is visible in the device's
// traffic counters, exactly like a chunk reallocation in Algorithm 1.
func (c *KVCache) grow(need int) {
	newCap := roundUpTokens(need)
	bytes := int64(newCap) * int64(c.hidden) * 4
	liveFloats := c.length * c.hidden
	before := c.Bytes()
	for l := range c.k {
		nk := c.dev.Malloc(bytes)
		nv := c.dev.Malloc(bytes)
		copy(nk.Data()[:liveFloats], c.k[l].Data()[:liveFloats])
		copy(nv.Data()[:liveFloats], c.v[l].Data()[:liveFloats])
		c.dev.Free(c.k[l])
		c.dev.Free(c.v[l])
		c.k[l], c.v[l] = nk, nv
	}
	c.capTok = newCap
	c.dev.AddKVReserved(c.Bytes() - before)
}

// AppendRow stores one token's K and V rows for the given layer at the
// next position. Every layer must append exactly once per step, then
// Advance commits the token.
func (c *KVCache) AppendRow(layer int, kRow, vRow []float32) {
	if len(kRow) != c.hidden || len(vRow) != c.hidden {
		panic(fmt.Sprintf("model: KV row size %d/%d, want %d", len(kRow), len(vRow), c.hidden))
	}
	if c.length+1 > c.capTok {
		c.grow(c.length + 1)
	}
	off := c.length * c.hidden
	copy(c.k[layer].Data()[off:off+c.hidden], kRow)
	copy(c.v[layer].Data()[off:off+c.hidden], vRow)
}

// Advance commits the row appended to every layer this step.
func (c *KVCache) Advance() {
	c.length++
	c.dev.AddKVUsed(c.rowBytes())
}

// K returns layer l's keys as a contiguous [tokens, hidden] slice covering
// tokens rows (tokens may include the row appended but not yet advanced).
func (c *KVCache) K(l, tokens int) []float32 { return c.k[l].Data()[:tokens*c.hidden] }

// V returns layer l's values, like K.
func (c *KVCache) V(l, tokens int) []float32 { return c.v[l].Data()[:tokens*c.hidden] }

// Free returns all buffers to the device (request evicted or finished) and
// releases the reservation and usage gauges. Idempotent.
func (c *KVCache) Free() {
	if c.k == nil {
		return
	}
	c.dev.AddKVReserved(-c.Bytes())
	c.dev.AddKVUsed(-c.UsedBytes())
	for l := range c.k {
		c.dev.Free(c.k[l])
		c.dev.Free(c.v[l])
	}
	c.k, c.v = nil, nil
	c.length, c.capTok = 0, 0
}
