package model

import (
	"fmt"

	"repro/internal/allocator"
	"repro/internal/blas"
	"repro/internal/tensor"
)

// KVChunkTokens is the granularity of KV-cache capacity growth. Like
// Algorithm 1's 2 MB activation chunks, growing in fixed token chunks
// bounds reallocation traffic while keeping slack proportional to the
// chunk, not the sequence. It is also the block size of the paged
// BlockKVCache — one block holds KVChunkTokens rows of one layer's K or V.
const KVChunkTokens = 32

// kvGrowthNum/kvGrowthDen mirror the allocator's K_SCALE = 1.2: when a
// cache must grow, reserve 20% headroom past the requested length so steady
// token-by-token growth does not reallocate every chunk boundary exactly.
// Integer math keeps the policy exact (and overflow-checkable) at any size.
const (
	kvGrowthNum = 6
	kvGrowthDen = 5
)

// maxKVTokens bounds a single cache's token capacity. Device KV budgets are
// int64 bytes while token arithmetic is int; an adversarially large
// expectTokens must be rejected up front (NewKVCache returns an error)
// rather than overflowing into a negative Malloc panic.
const maxKVTokens = 1 << 40

// KVCache is one generation request's self-attention key/value store: per
// layer, a contiguous [tokens, hidden] K and V region. The backing buffers
// are drawn from the simulated device (internal/allocator), so per-request
// KV footprint and reallocation traffic show up in the same Snapshot
// counters the paper's Figures 11–12 track for activations.
//
// Capacity is sequence-length-aware: a session opens with room for its
// expected total length (prompt-proportional, like the paper's zh→en ≈1:1
// heuristic), so the common case never reallocates mid-generation.
//
// Reservation accounting: the device's KV-reserved gauge is charged for
// exactly the admission grant (expectTokens rows) — NOT the chunk-rounded,
// headroom-scaled buffer capacity — so the gauge and the continuous
// scheduler's token ledger are the same figure in different units. Buffer
// slack past the grant is visible in LiveBytes, where capacity belongs. If
// a cache ever outgrows its grant (admission under-budgeted), the
// reservation extends row by row so used ≤ reserved stays invariant.
type KVCache struct {
	dev         *allocator.Device
	hidden      int
	half        bool                // binary16 storage (fp16 fast path): 2 bytes/element
	k, v        []*allocator.Buffer // one per layer
	length      int                 // tokens currently stored
	capTok      int                 // token capacity of every buffer
	reservedTok int                 // tokens charged to the KV-reserved gauge
}

// elemBytes returns the storage width of one element: 4 for fp32, 2 for the
// binary16 fast path. Halving this is exactly the "~2× KV capacity" lever —
// every gauge, grant, and buffer size below scales with it.
func (c *KVCache) elemBytes() int64 {
	if c.half {
		return 2
	}
	return 4
}

// roundUpTokens applies the growth policy: headroom-scaled and rounded to
// the chunk granularity, clamped so the result never exceeds maxKVTokens
// (token counts near the cap skip the headroom rather than overflow).
func roundUpTokens(need int) int {
	if need < 1 {
		need = 1
	}
	if need > maxKVTokens {
		return need // caller validates against the budget; never scale past it
	}
	scaled := need / kvGrowthDen * kvGrowthNum
	if rem := need % kvGrowthDen; rem > 0 {
		scaled += rem * kvGrowthNum / kvGrowthDen
	}
	if scaled > maxKVTokens {
		scaled = maxKVTokens
	}
	return (scaled + KVChunkTokens - 1) / KVChunkTokens * KVChunkTokens
}

// kvBufferBytes returns the byte size of one layer's K (or V) buffer for
// tokens rows at the given element width, or an error when the size cannot
// be represented.
func kvBufferBytes(tokens, hidden int, elemBytes int64) (int64, error) {
	if tokens < 0 || tokens > maxKVTokens {
		return 0, fmt.Errorf("model: KV token count %d outside [0, %d]", tokens, maxKVTokens)
	}
	bytes := int64(tokens) * int64(hidden) * elemBytes
	if hidden > 0 && bytes/int64(hidden)/elemBytes != int64(tokens) {
		return 0, fmt.Errorf("model: KV buffer size overflows (%d tokens × hidden %d)", tokens, hidden)
	}
	return bytes, nil
}

// NewKVCache reserves device-accounted K/V storage for layers decoder
// layers with the given hidden size, sized for expectTokens total tokens —
// the admission grant. A grant the device budget cannot represent is
// rejected with an error instead of panicking inside Malloc.
func NewKVCache(dev *allocator.Device, layers, hidden, expectTokens int) (*KVCache, error) {
	return newKVCache(dev, layers, hidden, expectTokens, false)
}

// NewKVCacheF16 is NewKVCache with binary16 storage: half the bytes per
// token flow through every gauge, so the same device budget admits ~2× the
// sessions.
func NewKVCacheF16(dev *allocator.Device, layers, hidden, expectTokens int) (*KVCache, error) {
	return newKVCache(dev, layers, hidden, expectTokens, true)
}

func newKVCache(dev *allocator.Device, layers, hidden, expectTokens int, half bool) (*KVCache, error) {
	if layers <= 0 || hidden <= 0 {
		return nil, fmt.Errorf("model: invalid KV cache geometry layers=%d hidden=%d", layers, hidden)
	}
	if expectTokens < 1 {
		expectTokens = 1
	}
	if expectTokens > maxKVTokens {
		return nil, fmt.Errorf("model: KV grant %d tokens exceeds the %d-token device budget", expectTokens, maxKVTokens)
	}
	capTok := roundUpTokens(expectTokens)
	c := &KVCache{dev: dev, hidden: hidden, half: half, capTok: capTok, reservedTok: expectTokens}
	bytes, err := kvBufferBytes(capTok, hidden, c.elemBytes())
	if err != nil {
		return nil, err
	}
	// Whole-cache footprint must be representable too: 2 buffers × layers.
	if total := bytes * 2 * int64(layers); bytes != 0 && total/bytes != 2*int64(layers) {
		return nil, fmt.Errorf("model: KV cache footprint overflows (%d layers × %d bytes)", layers, bytes)
	}
	for l := 0; l < layers; l++ {
		c.k = append(c.k, dev.Malloc(bytes))
		c.v = append(c.v, dev.Malloc(bytes))
	}
	// The reservation gauge carries exactly what admission control granted;
	// Advance moves bytes from reserved-only to used.
	dev.AddKVReserved(int64(c.reservedTok) * c.rowBytes())
	return c, nil
}

// rowBytes is the device footprint one committed token adds across all
// layers' K and V buffers.
func (c *KVCache) rowBytes() int64 {
	return int64(len(c.k)) * 2 * int64(c.hidden) * c.elemBytes()
}

// UsedBytes returns the bytes actually occupied by committed context rows
// (≤ ReservedBytes()).
func (c *KVCache) UsedBytes() int64 {
	return int64(c.length) * c.rowBytes()
}

// ReservedBytes returns the bytes charged to the device's KV-reserved
// gauge: the admission grant (extended only if the cache outgrew it).
func (c *KVCache) ReservedBytes() int64 {
	return int64(c.reservedTok) * c.rowBytes()
}

// Len returns the number of tokens stored.
func (c *KVCache) Len() int { return c.length }

// CapTokens returns the current token capacity.
func (c *KVCache) CapTokens() int { return c.capTok }

// Bytes returns the cache's total device footprint (capacity, ≥ the
// reservation — chunk rounding and growth headroom live here).
func (c *KVCache) Bytes() int64 {
	var total int64
	for _, b := range c.k {
		total += b.Size
	}
	for _, b := range c.v {
		total += b.Size
	}
	return total
}

// grow reallocates every layer's buffers to hold at least need tokens,
// copying live rows. The Malloc/Free pair is visible in the device's
// traffic counters, exactly like a chunk reallocation in Algorithm 1.
func (c *KVCache) grow(need int) {
	newCap := roundUpTokens(need)
	bytes, err := kvBufferBytes(newCap, c.hidden, c.elemBytes())
	if err != nil {
		panic(fmt.Sprintf("model: KV growth past validated grant: %v", err))
	}
	live := c.length * c.hidden
	for l := range c.k {
		nk := c.dev.Malloc(bytes)
		nv := c.dev.Malloc(bytes)
		if c.half {
			copy(nk.DataU16()[:live], c.k[l].DataU16()[:live])
			copy(nv.DataU16()[:live], c.v[l].DataU16()[:live])
		} else {
			copy(nk.Data()[:live], c.k[l].Data()[:live])
			copy(nv.Data()[:live], c.v[l].Data()[:live])
		}
		c.dev.Free(c.k[l])
		c.dev.Free(c.v[l])
		c.k[l], c.v[l] = nk, nv
	}
	c.capTok = newCap
}

// AppendRow stores one token's K and V rows for the given layer at the
// next position. Every layer must append exactly once per step, then
// Advance commits the token. Appending never touches the KV gauges — an
// eviction between AppendRow and Advance (mid-step cancel or deadline)
// releases exactly what was reserved and committed, nothing more.
func (c *KVCache) AppendRow(layer int, kRow, vRow []float32) {
	if len(kRow) != c.hidden || len(vRow) != c.hidden {
		panic(fmt.Sprintf("model: KV row size %d/%d, want %d", len(kRow), len(vRow), c.hidden))
	}
	if c.length+1 > c.capTok {
		c.grow(c.length + 1)
	}
	off := c.length * c.hidden
	if c.half {
		// The write-side cast of the fp16 path: rows are rounded through
		// binary16 as they enter the cache, the same conversion a Tensor
		// Core store performs.
		tensor.EncodeF16Slice(c.k[layer].DataU16()[off:off+c.hidden], kRow)
		tensor.EncodeF16Slice(c.v[layer].DataU16()[off:off+c.hidden], vRow)
		return
	}
	copy(c.k[layer].Data()[off:off+c.hidden], kRow)
	copy(c.v[layer].Data()[off:off+c.hidden], vRow)
}

// Advance commits the row appended to every layer this step. A session
// that outgrows its admission grant extends the reservation row by row, so
// the used gauge can never exceed the reserved gauge.
func (c *KVCache) Advance() {
	c.length++
	if c.length > c.reservedTok {
		c.reservedTok = c.length
		c.dev.AddKVReserved(c.rowBytes())
	}
	c.dev.AddKVUsed(c.rowBytes())
}

// Half reports whether the cache stores binary16 rows.
func (c *KVCache) Half() bool { return c.half }

// K returns layer l's keys as a contiguous [tokens, hidden] slice covering
// tokens rows (tokens may include the row appended but not yet advanced).
// Panics on a binary16 cache — the fp16 decode path reads KH/VH.
func (c *KVCache) K(l, tokens int) []float32 {
	if c.half {
		panic("model: K on a binary16 KV cache; use KH")
	}
	return c.k[l].Data()[:tokens*c.hidden]
}

// V returns layer l's values, like K.
func (c *KVCache) V(l, tokens int) []float32 {
	if c.half {
		panic("model: V on a binary16 KV cache; use VH")
	}
	return c.v[l].Data()[:tokens*c.hidden]
}

// KH returns layer l's keys as binary16 storage (fp16 caches only).
func (c *KVCache) KH(l, tokens int) blas.Half {
	if !c.half {
		panic("model: KH on an fp32 KV cache; use K")
	}
	return c.k[l].DataU16()[:tokens*c.hidden]
}

// VH returns layer l's values as binary16 storage, like KH.
func (c *KVCache) VH(l, tokens int) blas.Half {
	if !c.half {
		panic("model: VH on an fp32 KV cache; use V")
	}
	return c.v[l].DataU16()[:tokens*c.hidden]
}

// Free returns all buffers to the device (request evicted or finished) and
// releases the reservation and usage gauges — exactly the bytes charged,
// whatever state the cache is in (including between AppendRow and
// Advance). Idempotent.
func (c *KVCache) Free() {
	if c.k == nil {
		return
	}
	c.dev.AddKVReserved(-c.ReservedBytes())
	c.dev.AddKVUsed(-c.UsedBytes())
	for l := range c.k {
		c.dev.Free(c.k[l])
		c.dev.Free(c.v[l])
	}
	c.k, c.v = nil, nil
	c.length, c.capTok, c.reservedTok = 0, 0, 0
}
