package model

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/allocator"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// newPagedGenerator builds a generator in paged-KV mode over its own device
// and pool. Pool capacity is in blocks; block size follows KVChunkTokens.
func newPagedGenerator(t *testing.T, cfg Config, capBlocks, prefixCap int) (*Generator, *allocator.Device, *allocator.BlockPool) {
	t.Helper()
	dev := allocator.NewDevice()
	g, err := NewGenerator(cfg, 42, dev)
	if err != nil {
		t.Fatal(err)
	}
	pool := allocator.NewBlockPool(dev, int64(KVChunkTokens)*int64(cfg.Hidden)*4, capBlocks)
	g.EnablePagedKV(pool, prefixCap)
	return g, dev, pool
}

// pagedRun mirrors raggedRun for paged sessions: session i joins at
// joinAt[i] with a unique prompt (no sharing — pure paging), steps raggedly,
// leaves when done or at evictAt[i].
func pagedRun(t *testing.T, g *Generator, mems []int, budgets, joinAt, evictAt []int, seed int64) [][]int {
	t.Helper()
	n := len(mems)
	sessions := make([]*GenSession, n)
	streams := make([][]int, n)
	var live []*GenSession
	started := 0
	for step := 0; step < 512; step++ {
		for i := 0; i < n; i++ {
			if sessions[i] == nil && joinAt[i] == step {
				mem := testMemory(seed+int64(i), mems[i], g.Cfg.Hidden)
				prompt := []int{1000 + i, int(seed), mems[i]} // unique per session
				s, err := g.NewPagedSession(int64(i), prompt, mem, budgets[i])
				if err != nil {
					t.Fatal(err)
				}
				sessions[i] = s
				live = append(live, s)
				started++
			}
		}
		if len(live) == 0 {
			if started == n {
				break
			}
			continue
		}
		if _, err := g.Step(live); err != nil {
			t.Fatal(err)
		}
		kept := live[:0]
		for _, s := range live {
			i := int(s.ID)
			if evictAt[i] >= 0 && len(s.Generated()) >= evictAt[i] && !s.Done() {
				streams[i] = append([]int(nil), s.Generated()...)
				s.Close()
				continue
			}
			if s.Done() {
				streams[i] = append([]int(nil), s.Generated()...)
				s.Close()
				continue
			}
			kept = append(kept, s)
		}
		live = kept
	}
	if len(live) != 0 || started != n {
		t.Fatalf("paged run did not terminate: %d live, %d/%d started", len(live), started, n)
	}
	return streams
}

// TestPagedDecodeBitIdenticalToContiguousFuzz is the paged tentpole
// property: on fuzzed session sets with mixed prompts, budgets, and mid-run
// admit/evict, the paged generator (block tables, grouped blocked kernels)
// must produce BIT-IDENTICAL token streams to the legacy contiguous path
// AND to the per-row blocked oracle.
func TestPagedDecodeBitIdenticalToContiguousFuzz(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	cfg := genTestConfig()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		n := 1 + rng.Intn(5)
		mems := make([]int, n)
		budgets := make([]int, n)
		joinAt := make([]int, n)
		evictAt := make([]int, n)
		for i := 0; i < n; i++ {
			mems[i] = 1 + rng.Intn(17)
			// Budgets past KVChunkTokens cross block boundaries mid-decode.
			budgets[i] = 1 + rng.Intn(2*KVChunkTokens)
			joinAt[i] = rng.Intn(6)
			evictAt[i] = -1
			if rng.Intn(4) == 0 {
				evictAt[i] = 1 + rng.Intn(8)
			}
		}
		joinAt[0] = 0
		cfg.MaxTargetLen = 2 * KVChunkTokens // allow boundary-crossing budgets

		legacy, err := NewGenerator(cfg, 42, allocator.NewDevice())
		if err != nil {
			t.Fatal(err)
		}
		paged, _, pool := newPagedGenerator(t, cfg, 4096, 8)
		oracle, dev2, pool2 := newPagedGenerator(t, cfg, 4096, 8)
		oracle.PerRowAttention = true

		seed := int64(trial) * 17
		want := raggedRun(t, legacy, mems, budgets, joinAt, evictAt, seed)
		got := pagedRun(t, paged, mems, budgets, joinAt, evictAt, seed)
		ref := pagedRun(t, oracle, mems, budgets, joinAt, evictAt, seed)
		for i := range want {
			for j := 0; j < len(want[i]) || j < len(got[i]) || j < len(ref[i]); j++ {
				if j >= len(want[i]) || j >= len(got[i]) || j >= len(ref[i]) ||
					got[i][j] != want[i][j] || ref[i][j] != want[i][j] {
					t.Fatalf("trial %d session %d: paged %v / oracle %v vs contiguous %v",
						trial, i, got[i], ref[i], want[i])
				}
			}
		}
		// All sessions closed: the pools must be fully drained.
		if st := pool.Stats(); st.UsedBlocks != 0 {
			t.Fatalf("trial %d: %d blocks leaked", trial, st.UsedBlocks)
		}
		pool2.Close()
		if snap := dev2.Snapshot(); snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
			t.Fatalf("trial %d: oracle gauges not zero: %+v", trial, snap)
		}
	}
}

// TestPrefixReplayAndContinuationBitIdentical pins the sharing semantics:
// a retired prompt answers an identical one by replay (encoder and decode
// skipped) and extends by block-table mapping, both bit-identical to
// decoding from scratch — the greedy determinism the WeChat fixed-question
// workload exploits.
func TestPrefixReplayAndContinuationBitIdentical(t *testing.T) {
	cfg := genTestConfig()
	cfg.MaxTargetLen = 2 * KVChunkTokens

	prompt := []int{7, 8, 9, 10}
	mem := func() *tensor.Tensor { return testMemory(99, 6, cfg.Hidden) }

	// Reference streams from a sharing-free generator.
	freshAt := func(budget int) []int {
		g, err := NewGenerator(cfg, 42, allocator.NewDevice())
		if err != nil {
			t.Fatal(err)
		}
		s, err := g.NewSession(1, mem(), budget)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		return drain(t, g, s)
	}
	const small, large = 10, 2 * KVChunkTokens
	wantSmall, wantLarge := freshAt(small), freshAt(large)
	if len(wantSmall) < small {
		t.Skip("stream hit EOS before the continuation window; covered by other seeds")
	}

	g, dev, pool := newPagedGenerator(t, cfg, 4096, 8)

	// Miss: decode the small budget from scratch, then retire it.
	s1, err := g.NewPagedSession(1, prompt, mem(), small)
	if err != nil {
		t.Fatal(err)
	}
	got1 := drain(t, g, s1)
	g.Retire(s1)
	for i := range wantSmall {
		if got1[i] != wantSmall[i] {
			t.Fatalf("paged miss stream %v != fresh %v", got1, wantSmall)
		}
	}

	// Hit, same budget: born done, zero decode steps, zero new blocks.
	usedBefore := pool.Stats().UsedBlocks
	s2, err := g.NewPagedSession(2, prompt, nil, small) // nil memory: encoder skipped
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Done() {
		t.Fatal("full prefix hit should be born done")
	}
	if got := s2.Generated(); len(got) != len(wantSmall) {
		t.Fatalf("replay %v != fresh %v", got, wantSmall)
	} else {
		for i := range got {
			if got[i] != wantSmall[i] {
				t.Fatalf("replay %v != fresh %v", got, wantSmall)
			}
		}
	}
	if pool.Stats().UsedBlocks != usedBefore {
		t.Fatal("full replay consumed pool blocks")
	}
	s2.Close()

	// Hit, larger budget: continuation maps the retired block tables
	// (sharing visible in the pool) and extends bit-identically.
	s3, err := g.NewPagedSession(3, prompt, nil, large)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Done() {
		t.Fatal("continuation should not be born done")
	}
	if pool.Stats().SharedBlocks == 0 {
		t.Fatal("continuation did not share the retired block tables")
	}
	got3 := drain(t, g, s3)
	if len(got3) != len(wantLarge) {
		t.Fatalf("continuation %v != fresh %v", got3, wantLarge)
	}
	for i := range got3 {
		if got3[i] != wantLarge[i] {
			t.Fatalf("continuation token %d: %d != fresh %d", i, got3[i], wantLarge[i])
		}
	}
	g.Retire(s3) // upgrade the entry to the longer stream

	// Smaller budget against the upgraded entry: truncated replay.
	s4, err := g.NewPagedSession(4, prompt, nil, small)
	if err != nil {
		t.Fatal(err)
	}
	if !s4.Done() {
		t.Fatal("truncated replay should be born done")
	}
	for i, tok := range s4.Generated() {
		if tok != wantSmall[i] {
			t.Fatalf("truncated replay diverged at %d", i)
		}
	}
	s4.Close()

	// Scavenge the retired KV: replay still works, continuation falls back
	// to a fresh decode — still bit-identical, still encoder-free.
	if g.ScavengePrefix(1 << 30); g.PrefixStats().KVBlocks != 0 {
		t.Fatal("scavenge left retired blocks behind")
	}
	s5, err := g.NewPagedSession(5, prompt, nil, large)
	if err != nil {
		t.Fatal(err)
	}
	var got5 []int
	if s5.Done() {
		got5 = s5.Generated()
	} else {
		got5 = drain(t, g, s5)
	}
	for i := range wantLarge {
		if i >= len(got5) || got5[i] != wantLarge[i] {
			t.Fatalf("post-scavenge stream %v != fresh %v", got5, wantLarge)
		}
	}
	s5.Close()

	st := g.PrefixStats()
	if st.Hits < 3 || st.Misses != 1 {
		t.Fatalf("prefix counters hits=%d misses=%d, want ≥3 hits and 1 miss", st.Hits, st.Misses)
	}

	// Shutdown: cache dropped, pool drained, gauges zero.
	g.ClosePrefix()
	if st := pool.Stats(); st.UsedBlocks != 0 {
		t.Fatalf("%d blocks leaked at shutdown", st.UsedBlocks)
	}
	pool.Close()
	snap := dev.Snapshot()
	if snap.KVReservedBytes != 0 || snap.KVUsedBytes != 0 {
		t.Fatalf("gauges not zero at shutdown: %+v", snap)
	}
}

// TestPagedPoolExhaustionRecovers: with a pool too small for everyone,
// Step fails with ErrKVPoolExhausted, and releasing one session (the
// preemption the serving loop performs) lets the batch proceed losslessly.
func TestPagedPoolExhaustionRecovers(t *testing.T) {
	cfg := genTestConfig()
	// 2 layers × (K+V) = 4 blocks per session per block-depth: capacity 6
	// fits one session and leaves the second stranded mid-ensure.
	g, _, pool := newPagedGenerator(t, cfg, 6, 4)
	var sessions []*GenSession
	for i := 0; i < 2; i++ {
		s, err := g.NewPagedSession(int64(i), []int{i}, testMemory(int64(i), 4, cfg.Hidden), 8)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	if _, err := g.Step(sessions); !errors.Is(err, ErrKVPoolExhausted) {
		t.Fatalf("step over an exhausted pool: err=%v, want ErrKVPoolExhausted", err)
	}
	// Preempt the second session: its blocks return and the first proceeds.
	sessions[1].Close()
	for !sessions[0].Done() {
		if _, err := g.Step(sessions[:1]); err != nil {
			t.Fatal(err)
		}
	}
	if len(sessions[0].Generated()) == 0 {
		t.Fatal("survivor generated nothing")
	}
	sessions[0].Close()
	if st := pool.Stats(); st.UsedBlocks != 0 {
		t.Fatalf("%d blocks leaked", st.UsedBlocks)
	}
}

// TestLegacyLedgerReconciliation is the one-source-of-truth cross-check:
// in legacy (contiguous) mode the device's KV-reserved gauge must equal the
// continuous scheduler's token ledger — Σ ReservedTokens(PromptLen+MaxNew)
// × KVRowBytes — exactly, for any mix of live sessions.
func TestLegacyLedgerReconciliation(t *testing.T) {
	cfg := genTestConfig()
	dev := allocator.NewDevice()
	g, err := NewGenerator(cfg, 42, dev)
	if err != nil {
		t.Fatal(err)
	}
	cs := sched.NewContinuousScheduler(8, 0)
	type pair struct {
		sess *GenSession
		req  *sched.GenRequest
	}
	var livePairs []pair
	for i, shape := range []struct{ srcLen, maxNew int }{{5, 8}, {13, 3}, {2, 16}} {
		req := &sched.GenRequest{ID: int64(i), PromptLen: shape.srcLen, MaxNew: shape.maxNew}
		cs.Enqueue(req)
		sess, err := g.NewSession(int64(i), testMemory(int64(i), shape.srcLen, cfg.Hidden), shape.maxNew)
		if err != nil {
			t.Fatal(err)
		}
		livePairs = append(livePairs, pair{sess, req})
	}
	if n := len(cs.Admit()); n != 3 {
		t.Fatalf("admitted %d of 3", n)
	}
	check := func() {
		t.Helper()
		want := int64(cs.ReservedTokens()) * g.KVRowBytes()
		if got := dev.Snapshot().KVReservedBytes; got != want {
			t.Fatalf("device KV-reserved %d, scheduler ledger %d tokens = %d bytes",
				got, cs.ReservedTokens(), want)
		}
	}
	check()
	// A few decode steps move used, never reserved.
	sessions := []*GenSession{livePairs[0].sess, livePairs[1].sess, livePairs[2].sess}
	for i := 0; i < 2; i++ {
		alive := sessions[:0]
		for _, s := range sessions {
			if !s.Done() {
				alive = append(alive, s)
			}
		}
		if len(alive) == 0 {
			break
		}
		if _, err := g.Step(alive); err != nil {
			t.Fatal(err)
		}
		sessions = alive
		check()
	}
	// Evictions refund both ledgers in lockstep.
	for _, p := range livePairs {
		cs.Evict(p.req.ID)
		p.sess.Close()
		check()
	}
	if got := dev.Snapshot().KVReservedBytes; got != 0 {
		t.Fatalf("ledger not zero after full eviction: %d", got)
	}
}
