package model

import (
	"math"

	"repro/internal/blas"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// FP16 decode support: the Turbo-TC route through the Seq2Seq decoder.
// Weights are rounded to binary16 once at enable time; activations round at
// every GEMM boundary (the Tensor Core load conversion); KV rows are stored
// as binary16 (see KVCache/BlockKVCache half mode); accumulation and all
// reductions stay fp32. The per-row oracles below dispatch the exact GEMM
// kernel the grouped fp16 decode path (kernels.AttentionF16 /
// AttentionBlockedF16) runs per (session, head) problem, so the two routes
// are bit-identical by construction — the same contract the fp32 pair
// (attend / DecodeAttention) keeps.

// EnableFP16 switches the decoder's generation route to binary16 storage
// with fp32 accumulation, pre-encoding every GEMM weight. Must be called
// before sessions are opened (existing fp32 KV caches are not converted).
// Idempotent.
func (d *Decoder) EnableFP16() {
	if d.fp16 {
		return
	}
	d.fp16 = true
	d.halfW = make(map[*tensor.Tensor]blas.Half)
	enc := func(w *tensor.Tensor) { d.halfW[w] = blas.EncodeHalf(w.Data()) }
	enc(d.Proj)
	for l := range d.layers {
		lw := &d.layers[l]
		for _, w := range []*tensor.Tensor{
			lw.selfWq, lw.selfWk, lw.selfWv, lw.selfWo,
			lw.crossWq, lw.crossWk, lw.crossWv, lw.crossWo,
			lw.ffnW1, lw.ffnW2,
		} {
			enc(w)
		}
	}
}

// FP16Enabled reports whether EnableFP16 was called.
func (d *Decoder) FP16Enabled() bool { return d.fp16 }

// buildCrossCacheF16 is buildCrossCache on the fp16 route: the encoder
// memory and the K/V projection weights round through binary16 into the
// GEMM, and the projected rows are stored as binary16 — the cross memory is
// KV storage, so it halves along with the decode cache.
func (d *Decoder) buildCrossCacheF16(memory *tensor.Tensor) *crossCache {
	h := d.Cfg.Hidden
	srcLen := memory.Dim(0)
	cc := &crossCache{srcLen: srcLen, half: true}
	mh := blas.EncodeHalf(memory.Data())
	k := make([]float32, srcLen*h)
	v := make([]float32, srcLen*h)
	for l := range d.layers {
		lw := &d.layers[l]
		blas.GemmF16(false, false, srcLen, h, h, 1, mh, h, d.halfW[lw.crossWk], h, 0, k, h)
		kernels.AddBias(k, lw.crossBk.Data(), srcLen, h)
		blas.GemmF16(false, false, srcLen, h, h, 1, mh, h, d.halfW[lw.crossWv], h, 0, v, h)
		kernels.AddBias(v, lw.crossBv.Data(), srcLen, h)
		cc.kh = append(cc.kh, blas.EncodeHalf(k))
		cc.vh = append(cc.vh, blas.EncodeHalf(v))
	}
	return cc
}

// attendF16 is the per-row fp16 reference oracle for kernels.AttentionF16:
// single-query multi-head attention with binary16 K/V, the softmax scale
// folded into the score GEMM's alpha, and the probabilities rounded through
// binary16 before the context product — exactly the fused-chain numerics the
// grouped kernel runs, one (session, head) problem at a time.
func (d *Decoder) attendF16(q []float32, keys, vals blas.Half, T int, ctx []float32) {
	h, heads := d.Cfg.Hidden, d.Cfg.Heads
	hd := h / heads
	scale := float32(1 / math.Sqrt(float64(hd)))
	qr := make([]float32, h)
	copy(qr, q)
	tensor.RoundSliceF16(qr)
	scores := make([]float32, T)
	for head := 0; head < heads; head++ {
		off := head * hd
		blas.GemmF16A32(false, true, 1, T, hd, scale, qr[off:off+hd], hd, keys[off:], h, 0, scores, T)
		kernels.Softmax(scores, 1, T)
		tensor.RoundSliceF16(scores)
		blas.GemmF16A32(false, false, 1, hd, T, 1, scores, T, vals[off:], h, 0, ctx[off:off+hd], hd)
	}
}

// attendBlockedF16 is attendF16 reading K/V through a paged cache's
// binary16 block tables — the per-row oracle for
// kernels.AttentionBlockedF16. Block application order and beta continuation
// match the contiguous product exactly, so it is bit-identical to attendF16
// over the same logical rows.
func (d *Decoder) attendBlockedF16(q []float32, keyBlocks, valBlocks []blas.Half, T, blockTok int, ctx []float32) {
	h, heads := d.Cfg.Hidden, d.Cfg.Heads
	hd := h / heads
	scale := float32(1 / math.Sqrt(float64(hd)))
	qr := make([]float32, h)
	copy(qr, q)
	tensor.RoundSliceF16(qr)
	scores := make([]float32, T)
	for head := 0; head < heads; head++ {
		off := head * hd
		for b := 0; b*blockTok < T; b++ {
			n := T - b*blockTok
			if n > blockTok {
				n = blockTok
			}
			blas.GemmF16A32(false, true, 1, n, hd, scale, qr[off:off+hd], hd, keyBlocks[b][off:], h, 0, scores[b*blockTok:], n)
		}
		kernels.Softmax(scores, 1, T)
		tensor.RoundSliceF16(scores)
		for b := 0; b*blockTok < T; b++ {
			n := T - b*blockTok
			if n > blockTok {
				n = blockTok
			}
			beta := float32(1)
			if b == 0 {
				beta = 0
			}
			blas.GemmF16A32(false, false, 1, hd, n, 1, scores[b*blockTok:], n, valBlocks[b][off:], h, beta, ctx[off:off+hd], hd)
		}
	}
}
