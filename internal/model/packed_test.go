package model

import (
	"math/rand"
	"testing"

	"repro/internal/allocator"
	"repro/internal/tensor"
)

// fuzzBatch draws a mixed-length token batch.
func fuzzBatch(rng *rand.Rand, vocab int) [][]int {
	batch := 1 + rng.Intn(6)
	out := make([][]int, batch)
	for i := range out {
		n := 1 + rng.Intn(24)
		toks := make([]int, n)
		for j := range toks {
			toks[j] = rng.Intn(vocab)
		}
		out[i] = toks
	}
	return out
}

// TestEncodePackedMatchesPadded: the packed embedding must write exactly
// the rows the padded embedding writes, with no padding rows at all.
func TestEncodePackedMatchesPadded(t *testing.T) {
	cfg := BertBase().Scaled(32, 4, 64, 1)
	emb := NewEmbedding(cfg, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		batch := fuzzBatch(rng, cfg.Vocab)
		padded, lens, err := emb.Encode(batch)
		if err != nil {
			t.Fatal(err)
		}
		packed, err := emb.EncodePacked(batch)
		if err != nil {
			t.Fatal(err)
		}
		want := tensor.PackPadded(padded, lens)
		if d := packed.Data().MaxAbsDiff(want.Data()); d != 0 {
			t.Fatalf("trial %d: packed embedding diverges, maxdiff=%g", trial, d)
		}
	}
}

// TestPackedClassifierBitIdentical is the end-to-end property of the
// zero-padding path (embedding → encoder stack → classification head):
// across fuzzed batches of mixed lengths, packed and padded execution must
// produce bit-identical logits — not merely close — because every packed
// kernel performs the same floating-point operations in the same order on
// each valid row, and the rows that differ are exactly the padding rows
// that only the padded path computes.
func TestPackedClassifierBitIdentical(t *testing.T) {
	cfg := BertBase().Scaled(32, 4, 64, 2)
	const classes = 5
	for _, fused := range []bool{true, false} {
		enc, err := NewEncoder(cfg, 11, allocator.NewTurbo(allocator.NewDevice()), fused)
		if err != nil {
			t.Fatal(err)
		}
		emb := NewEmbedding(cfg, 12)
		head := NewClassifier(cfg.Hidden, classes, 13)
		rng := rand.New(rand.NewSource(14))
		for trial := 0; trial < 12; trial++ {
			batch := fuzzBatch(rng, cfg.Vocab)

			paddedIn, lens, err := emb.Encode(batch)
			if err != nil {
				t.Fatal(err)
			}
			paddedHidden, _, err := enc.Forward(paddedIn, lens)
			if err != nil {
				t.Fatal(err)
			}
			paddedLogits, err := head.Logits(paddedHidden)
			if err != nil {
				t.Fatal(err)
			}

			packedIn, err := emb.EncodePacked(batch)
			if err != nil {
				t.Fatal(err)
			}
			packedHidden, _, err := enc.ForwardPacked(packedIn)
			if err != nil {
				t.Fatal(err)
			}
			packedLogits, err := head.LogitsPacked(packedHidden)
			if err != nil {
				t.Fatal(err)
			}

			if d := packedLogits.MaxAbsDiff(paddedLogits); d != 0 {
				t.Fatalf("fused=%v trial %d: packed logits diverge from padded, maxdiff=%g",
					fused, trial, d)
			}
		}
	}
}

// TestEncodePackedRejectsEmptySequence: the ragged layout has no padding
// row for an empty request, so it must be rejected up front.
func TestEncodePackedRejectsEmptySequence(t *testing.T) {
	emb := NewEmbedding(BertBase().Scaled(16, 2, 32, 1), 1)
	if _, err := emb.EncodePacked([][]int{{1, 2}, {}}); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := emb.EncodePacked(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
