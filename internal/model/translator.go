package model

import (
	"fmt"

	"repro/internal/allocator"
	"repro/internal/tensor"
)

// Translator couples a transformer encoder with the Seq2Seq decoder — the
// full encoder-decoder architecture of Fig. 1, as deployed in the paper's
// real-time translation workload ("a typical Seq2seq model", §1).
type Translator struct {
	Embedding *Embedding
	Encoder   *Encoder
	Decoder   *Decoder
}

// NewTranslator builds the pipeline. The encoder runs through the fused
// graph runtime with the given allocator; encoder and decoder must agree on
// hidden size.
func NewTranslator(encCfg, decCfg Config, seed int64, alloc allocator.Allocator) (*Translator, error) {
	if encCfg.Hidden != decCfg.Hidden {
		return nil, fmt.Errorf("model: encoder hidden %d != decoder hidden %d",
			encCfg.Hidden, decCfg.Hidden)
	}
	enc, err := NewEncoder(encCfg, seed, alloc, true)
	if err != nil {
		return nil, err
	}
	dec, err := NewDecoder(decCfg, seed+10000)
	if err != nil {
		return nil, err
	}
	return &Translator{
		Embedding: NewEmbedding(encCfg, seed+20000),
		Encoder:   enc,
		Decoder:   dec,
	}, nil
}

// Translate encodes the source token sequence and beam-decodes a target
// sequence, returning hypotheses best-first.
func (t *Translator) Translate(srcTokens []int, maxLen int) ([]Hypothesis, error) {
	if len(srcTokens) == 0 {
		return nil, fmt.Errorf("model: empty source sentence")
	}
	hidden, seqLens, err := t.Embedding.Encode([][]int{srcTokens})
	if err != nil {
		return nil, err
	}
	encoded, _, err := t.Encoder.Forward(hidden, seqLens)
	if err != nil {
		return nil, err
	}
	// Batch 1: the memory is the single sequence's hidden states [S, H].
	srcLen := len(srcTokens)
	memory := tensor.FromSlice(
		encoded.Data()[:srcLen*t.Encoder.Cfg.Hidden], srcLen, t.Encoder.Cfg.Hidden)
	return t.Decoder.BeamSearch(memory, maxLen)
}
