package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/allocator"
	"repro/internal/blas"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Special token conventions used by the decoder.
const (
	TokPad = 0
	TokBos = 1
	TokEos = 2
)

// decoderLayerWeights holds one decoder layer's parameters: self-attention,
// encoder-decoder cross-attention, and the feed-forward block, each with a
// post-residual LayerNorm (the Transformer decoder of Fig. 1).
type decoderLayerWeights struct {
	selfWq, selfWk, selfWv, selfWo *tensor.Tensor
	selfBq, selfBk, selfBv, selfBo *tensor.Tensor
	selfLnG, selfLnB               *tensor.Tensor

	crossWq, crossWk, crossWv, crossWo *tensor.Tensor
	crossBq, crossBk, crossBv, crossBo *tensor.Tensor
	crossLnG, crossLnB                 *tensor.Tensor

	ffnW1, ffnB1, ffnW2, ffnB2 *tensor.Tensor
	ffnLnG, ffnLnB             *tensor.Tensor
}

// Decoder is the Seq2Seq decoder of Table 3: an incremental (KV-cached)
// transformer decoder with beam search, as used in the paper's
// Chinese→English translation workload.
type Decoder struct {
	Cfg    Config
	Embed  *Embedding
	Proj   *tensor.Tensor // [hidden, vocab] output projection
	layers []decoderLayerWeights

	// scr is the shared decode-iteration workspace (see decodescratch.go):
	// BeamSearch positions and Generator iterations draw activations,
	// scores, and logits from it instead of making fresh slices per token.
	// A standalone decoder accounts it on a private device; NewGenerator
	// rebinds it to the engine's shared device so decode activations appear
	// in the same MemoryStats as encoder activations and KV caches.
	scr *decodeScratch

	// fp16 fast path (EnableFP16): weights encoded to binary16 once, decode
	// GEMMs run fp16-storage/fp32-accumulate, KV caches store binary16.
	fp16  bool
	halfW map[*tensor.Tensor]blas.Half
}

// NewDecoder builds a decoder with deterministic random weights.
func NewDecoder(cfg Config, seed int64) (*Decoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.IsDecoder {
		return nil, fmt.Errorf("model %s: NewDecoder needs a decoder config", cfg.Name)
	}
	h, inter, vocab := cfg.Hidden, cfg.Inter, cfg.Vocab
	d := &Decoder{
		Cfg:   cfg,
		Embed: NewEmbedding(cfg, seed),
		Proj:  tensor.RandN(seed+7, 0.05, h, vocab),
		scr:   newDecodeScratch(allocator.NewDevice()),
	}
	mat := func(s int64, r, c int) *tensor.Tensor { return tensor.RandN(s, 0.05, r, c) }
	vec := func(s int64, n int) *tensor.Tensor { return tensor.RandN(s, 0.02, n) }
	ones := func(s int64, n int) *tensor.Tensor { return tensor.RandUniform(s, 0.9, 1.1, n) }
	for l := 0; l < cfg.Layers; l++ {
		s := seed + int64(l)*100
		d.layers = append(d.layers, decoderLayerWeights{
			selfWq: mat(s+1, h, h), selfWk: mat(s+2, h, h), selfWv: mat(s+3, h, h), selfWo: mat(s+4, h, h),
			selfBq: vec(s+5, h), selfBk: vec(s+6, h), selfBv: vec(s+7, h), selfBo: vec(s+8, h),
			selfLnG: ones(s+9, h), selfLnB: vec(s+10, h),
			crossWq: mat(s+11, h, h), crossWk: mat(s+12, h, h), crossWv: mat(s+13, h, h), crossWo: mat(s+14, h, h),
			crossBq: vec(s+15, h), crossBk: vec(s+16, h), crossBv: vec(s+17, h), crossBo: vec(s+18, h),
			crossLnG: ones(s+19, h), crossLnB: vec(s+20, h),
			ffnW1: mat(s+21, h, inter), ffnB1: vec(s+22, inter),
			ffnW2: mat(s+23, inter, h), ffnB2: vec(s+24, h),
			ffnLnG: ones(s+25, h), ffnLnB: vec(s+26, h),
		})
	}
	return d, nil
}

// DecodeScratchBytes returns the decode workspace's current device
// footprint — the plan-reused buffer Generator.Step and stepAll draw
// activations from (tests use it to separate workspace bytes from KV).
func (d *Decoder) DecodeScratchBytes() int64 { return d.scr.bytes() }

// decodeState is the per-beam incremental state: self-attention KV cache per
// layer (rows of [hidden] appended per generated token).
type decodeState struct {
	selfK [][]float32 // [layer][t*hidden]
	selfV [][]float32
	toks  []int
	score float64
	done  bool
}

func (s *decodeState) clone(layers int) *decodeState {
	c := &decodeState{
		selfK: make([][]float32, layers),
		selfV: make([][]float32, layers),
		toks:  append([]int(nil), s.toks...),
		score: s.score,
		done:  s.done,
	}
	for l := 0; l < layers; l++ {
		c.selfK[l] = append([]float32(nil), s.selfK[l]...)
		c.selfV[l] = append([]float32(nil), s.selfV[l]...)
	}
	return c
}

// crossCache holds the per-layer projected encoder memory, shared by all
// beams (it depends only on the source sentence). In fp16 mode (half) the
// projections are stored as binary16 (kh/vh) and k/v stay nil — the cross
// memory is KV storage like the decode cache, so it halves with it.
type crossCache struct {
	k, v   [][]float32 // [layer][srcLen*hidden], fp32 mode
	kh, vh []blas.Half // [layer][srcLen*hidden], fp16 mode
	half   bool
	srcLen int
}

func (cc *crossCache) layers() int {
	if cc.half {
		return len(cc.kh)
	}
	return len(cc.k)
}

func (cc *crossCache) elemBytes() int64 {
	if cc.half {
		return 2
	}
	return 4
}

// newCrossCache builds the cross cache on the decoder's active numeric
// route (fp32, or binary16 after EnableFP16).
func (d *Decoder) newCrossCache(memory *tensor.Tensor) *crossCache {
	if d.fp16 {
		return d.buildCrossCacheF16(memory)
	}
	return d.buildCrossCache(memory)
}

// buildCrossCache projects the encoder memory through every layer's
// cross-attention K/V weights once per Decode call.
func (d *Decoder) buildCrossCache(memory *tensor.Tensor) *crossCache {
	h := d.Cfg.Hidden
	srcLen := memory.Dim(0)
	cc := &crossCache{srcLen: srcLen}
	for l := range d.layers {
		lw := &d.layers[l]
		k := make([]float32, srcLen*h)
		v := make([]float32, srcLen*h)
		blas.Gemm(false, false, srcLen, h, h, 1, memory.Data(), h, lw.crossWk.Data(), h, 0, k, h)
		kernels.AddBias(k, lw.crossBk.Data(), srcLen, h)
		blas.Gemm(false, false, srcLen, h, h, 1, memory.Data(), h, lw.crossWv.Data(), h, 0, v, h)
		kernels.AddBias(v, lw.crossBv.Data(), srcLen, h)
		cc.k = append(cc.k, k)
		cc.v = append(cc.v, v)
	}
	return cc
}

// attend computes single-query multi-head attention for one beam or
// session: q [hidden] against keys/vals [T, hidden], writing ctx [hidden].
// This is the per-row reference oracle for the grouped ragged decode path
// (kernels.DecodeAttention): each head's score and context products go
// through the same blas GEMM kernel the grouped call dispatches per
// (session, head) problem, so the two paths are bit-identical by
// construction and property tests can pin exact token streams.
func (d *Decoder) attend(q, keys, vals []float32, T int, ctx []float32) {
	h, heads := d.Cfg.Hidden, d.Cfg.Heads
	hd := h / heads
	scale := float32(1 / math.Sqrt(float64(hd)))
	scores := make([]float32, T)
	for head := 0; head < heads; head++ {
		off := head * hd
		blas.Gemm(false, true, 1, T, hd, 1, q[off:off+hd], hd, keys[off:], h, 0, scores, T)
		for t := range scores {
			scores[t] *= scale
		}
		kernels.Softmax(scores, 1, T)
		blas.Gemm(false, false, 1, hd, T, 1, scores, T, vals[off:], h, 0, ctx[off:off+hd], hd)
	}
}

// attendBlocked is attend reading K/V through a paged cache's block tables
// — the per-row reference oracle for kernels.AttentionBlocked. Scores only
// partition the output columns per block; the context product applies the
// blocks in ascending order with beta=1 continuation, resuming the same
// ascending floating-point accumulation the contiguous GEMM runs — so this
// path is bit-identical to attend over the same logical rows.
func (d *Decoder) attendBlocked(q []float32, keyBlocks, valBlocks [][]float32, T, blockTok int, ctx []float32) {
	h, heads := d.Cfg.Hidden, d.Cfg.Heads
	hd := h / heads
	scale := float32(1 / math.Sqrt(float64(hd)))
	scores := make([]float32, T)
	for head := 0; head < heads; head++ {
		off := head * hd
		for b := 0; b*blockTok < T; b++ {
			n := T - b*blockTok
			if n > blockTok {
				n = blockTok
			}
			blas.Gemm(false, true, 1, n, hd, 1, q[off:off+hd], hd, keyBlocks[b][off:], h, 0, scores[b*blockTok:], n)
		}
		for t := range scores {
			scores[t] *= scale
		}
		kernels.Softmax(scores, 1, T)
		for b := 0; b*blockTok < T; b++ {
			n := T - b*blockTok
			if n > blockTok {
				n = blockTok
			}
			beta := float32(1)
			if b == 0 {
				beta = 0
			}
			blas.Gemm(false, false, 1, hd, n, 1, scores[b*blockTok:], n, valBlocks[b][off:], h, beta, ctx[off:off+hd], hd)
		}
	}
}

// linear computes y = x·W + b for a single row.
func linear(x []float32, w *tensor.Tensor, b *tensor.Tensor, y []float32) {
	k, n := w.Dim(0), w.Dim(1)
	blas.Gemm(false, false, 1, n, k, 1, x, k, w.Data(), n, 0, y, n)
	if b != nil {
		kernels.AddBias(y, b.Data(), 1, n)
	}
}

// step advances one beam by one token: embeds tok at position pos, runs all
// decoder layers updating the beam's KV cache, and returns the vocab logits.
func (d *Decoder) step(st *decodeState, cc *crossCache, tok, pos int) []float32 {
	h := d.Cfg.Hidden
	x := make([]float32, h)
	copy(x, d.Embed.Word.Data()[tok*h:(tok+1)*h])
	pe := make([]float32, h)
	positionEncoding(pos, h, pe)
	for i := range x {
		x[i] += pe[i]
	}
	kernels.LayerNorm(x, d.Embed.Gamma.Data(), d.Embed.Beta.Data(), 1, h, 1e-5)

	q := make([]float32, h)
	kNew := make([]float32, h)
	vNew := make([]float32, h)
	ctx := make([]float32, h)
	proj := make([]float32, h)

	for l := range d.layers {
		lw := &d.layers[l]

		// Masked self-attention over the cache (causality is implicit:
		// the cache only holds past positions).
		linear(x, lw.selfWq, lw.selfBq, q)
		linear(x, lw.selfWk, lw.selfBk, kNew)
		linear(x, lw.selfWv, lw.selfBv, vNew)
		st.selfK[l] = append(st.selfK[l], kNew...)
		st.selfV[l] = append(st.selfV[l], vNew...)
		T := len(st.selfK[l]) / h
		d.attend(q, st.selfK[l], st.selfV[l], T, ctx)
		linear(ctx, lw.selfWo, lw.selfBo, proj)
		for i := range x {
			x[i] += proj[i]
		}
		kernels.LayerNorm(x, lw.selfLnG.Data(), lw.selfLnB.Data(), 1, h, 1e-5)

		// Cross-attention over the encoder memory.
		linear(x, lw.crossWq, lw.crossBq, q)
		d.attend(q, cc.k[l], cc.v[l], cc.srcLen, ctx)
		linear(ctx, lw.crossWo, lw.crossBo, proj)
		for i := range x {
			x[i] += proj[i]
		}
		kernels.LayerNorm(x, lw.crossLnG.Data(), lw.crossLnB.Data(), 1, h, 1e-5)

		// Feed-forward network.
		inter := make([]float32, d.Cfg.Inter)
		linear(x, lw.ffnW1, lw.ffnB1, inter)
		kernels.Act(d.Cfg.Act, inter)
		linear(inter, lw.ffnW2, lw.ffnB2, proj)
		for i := range x {
			x[i] += proj[i]
		}
		kernels.LayerNorm(x, lw.ffnLnG.Data(), lw.ffnLnB.Data(), 1, h, 1e-5)
	}

	logits := make([]float32, d.Cfg.Vocab)
	blas.Gemm(false, false, 1, d.Cfg.Vocab, h, 1, x, h, d.Proj.Data(), d.Cfg.Vocab, 0, logits, d.Cfg.Vocab)
	return logits
}

// logSoftmax converts logits to log-probabilities in place.
func logSoftmax(logits []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(float64(v - maxv))
	}
	lse := float32(math.Log(sum)) + maxv
	for i := range logits {
		logits[i] -= lse
	}
}

// Hypothesis is one finished beam.
type Hypothesis struct {
	Tokens []int   // generated tokens, excluding BOS, including EOS if hit
	Score  float64 // length-normalised log-probability
}

// lengthPenalty is GNMT's normalisation with α = 0.6.
func lengthPenalty(length int) float64 {
	return math.Pow((5+float64(length))/6, 0.6)
}

// BeamSearch decodes from encoder memory [srcLen, hidden] with the
// configured beam size, up to maxLen tokens. It returns hypotheses sorted
// best-first.
func (d *Decoder) BeamSearch(memory *tensor.Tensor, maxLen int) ([]Hypothesis, error) {
	if memory.Rank() != 2 || memory.Dim(1) != d.Cfg.Hidden {
		return nil, fmt.Errorf("model %s: memory shape %v, want [srcLen, %d]",
			d.Cfg.Name, memory.Shape(), d.Cfg.Hidden)
	}
	if maxLen <= 0 || maxLen > d.Cfg.MaxTargetLen {
		maxLen = d.Cfg.MaxTargetLen
	}
	beamSize := d.Cfg.BeamSize
	cc := d.buildCrossCache(memory)
	layers := d.Cfg.Layers

	// Hold the decode workspace for the whole search: every position reuses
	// its buffers and consumes the logits views in place, so concurrent
	// BeamSearch (or Translator.Translate) calls on one decoder serialise
	// here instead of racing on the shared scratch.
	d.scr.mu.Lock()
	defer d.scr.mu.Unlock()

	start := &decodeState{
		selfK: make([][]float32, layers),
		selfV: make([][]float32, layers),
	}
	beams := []*decodeState{start}
	var finished []Hypothesis

	for pos := 0; pos < maxLen; pos++ {
		type cand struct {
			parent int
			tok    int
			score  float64
		}
		var cands []cand
		// Advance every beam together: one batched forward per position.
		toks := make([]int, len(beams))
		for bi, st := range beams {
			toks[bi] = TokBos
			if len(st.toks) > 0 {
				toks[bi] = st.toks[len(st.toks)-1]
			}
		}
		logitsAll := d.stepAllLocked(beams, cc, toks, pos)
		for bi, st := range beams {
			logits := logitsAll[bi]
			logSoftmax(logits)
			// Keep the top beamSize expansions of this beam.
			top := topK(logits, beamSize)
			for _, t := range top {
				cands = append(cands, cand{parent: bi, tok: t, score: st.score + float64(logits[t])})
			}
		}
		// Select the best beamSize candidates overall (ties broken by
		// parent/token for determinism).
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			if cands[i].parent != cands[j].parent {
				return cands[i].parent < cands[j].parent
			}
			return cands[i].tok < cands[j].tok
		})
		if len(cands) > beamSize {
			cands = cands[:beamSize]
		}
		var next []*decodeState
		for _, c := range cands {
			st := beams[c.parent].clone(layers)
			st.toks = append(st.toks, c.tok)
			st.score = c.score
			if c.tok == TokEos {
				finished = append(finished, Hypothesis{
					Tokens: append([]int(nil), st.toks...),
					Score:  c.score / lengthPenalty(len(st.toks)),
				})
				continue
			}
			next = append(next, st)
		}
		if len(next) == 0 {
			break
		}
		beams = next
	}
	// Unfinished beams count as hypotheses too.
	for _, st := range beams {
		finished = append(finished, Hypothesis{
			Tokens: append([]int(nil), st.toks...),
			Score:  st.score / lengthPenalty(len(st.toks)),
		})
	}
	sort.SliceStable(finished, func(i, j int) bool { return finished[i].Score > finished[j].Score })
	if len(finished) > beamSize {
		finished = finished[:beamSize]
	}
	return finished, nil
}

// Greedy decodes with beam size 1 (convenience for tests/examples).
func (d *Decoder) Greedy(memory *tensor.Tensor, maxLen int) (Hypothesis, error) {
	save := d.Cfg.BeamSize
	d.Cfg.BeamSize = 1
	defer func() { d.Cfg.BeamSize = save }()
	hyps, err := d.BeamSearch(memory, maxLen)
	if err != nil {
		return Hypothesis{}, err
	}
	return hyps[0], nil
}

// topK returns the indices of the k largest values.
func topK(vals []float32, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		best := -1
		for j, v := range vals {
			taken := false
			for _, u := range idx {
				if u == j {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if best < 0 || v > vals[best] {
				best = j
			}
		}
		idx = append(idx, best)
	}
	return idx
}
