package tensor

import (
	"math"
	"sync"
)

// IEEE 754 binary16 conversion, used to emulate the Turbo-TC path: Tensor
// Cores consume FP16 inputs and accumulate in FP32, so rounding operands
// through binary16 before an FP32-accumulated GEMM reproduces the numeric
// behaviour the paper calls "minimal and acceptable precision loss"
// (§6.2.1) — and lets tests quantify that loss.

// F32ToF16Bits converts a float32 to binary16 bits with round-to-nearest-
// even, handling denormals, overflow to infinity, and NaN.
func F32ToF16Bits(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23) & 0xff
	frac := bits & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if frac != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00 // Inf
	case exp > 142: // overflow (unbiased > 15): round to Inf
		return sign | 0x7c00
	case exp >= 113: // normal half range (unbiased -14..15)
		halfExp := uint16(exp-112) << 10
		halfFrac := uint16(frac >> 13)
		// Round to nearest even on the 13 dropped bits.
		round := frac & 0x1fff
		if round > 0x1000 || (round == 0x1000 && halfFrac&1 == 1) {
			return sign | (halfExp + halfFrac + 1) // carry may bump the exponent: still correct
		}
		return sign | halfExp | halfFrac
	case exp >= 102: // denormal half (exp 102 can still round up to 2⁻²⁴)
		// Implicit leading 1 becomes explicit; half denormals represent
		// mant × 2^(exp-126) in units of 2⁻²⁴.
		mant := frac | 0x800000
		s := uint32(126) - uint32(exp) // 14..24
		halfFrac := uint16(mant >> s)
		rem := mant & ((uint32(1) << s) - 1)
		half := uint32(1) << (s - 1)
		if rem > half || (rem == half && halfFrac&1 == 1) {
			halfFrac++
		}
		return sign | halfFrac
	default: // underflow to signed zero
		return sign
	}
}

// F16BitsToF32 converts binary16 bits back to float32.
func F16BitsToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	frac := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // Inf or NaN
		if frac != 0 {
			return math.Float32frombits(sign | 0x7fc00000)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0: // zero or denormal
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// Normalise the denormal.
		e := uint32(113)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3ff
		return math.Float32frombits(sign | (e << 23) | (frac << 13))
	default:
		return math.Float32frombits(sign | ((exp + 112) << 23) | (frac << 13))
	}
}

// RoundF16 returns x rounded through binary16 (the value a Tensor Core
// would actually read).
func RoundF16(x float32) float32 {
	return F16BitsToF32(F32ToF16Bits(x))
}

// RoundSliceF16 rounds every element through binary16 in place.
func RoundSliceF16(x []float32) {
	for i, v := range x {
		x[i] = RoundF16(v)
	}
}

// RoundedF16 returns a new tensor with every element rounded through
// binary16, leaving t untouched.
func (t *Tensor) RoundedF16() *Tensor {
	c := t.Clone()
	RoundSliceF16(c.Data())
	return c
}

// f16DecodeTable maps every binary16 bit pattern to its float32 value. At
// 65536 entries (256 KiB) it turns the branchy F16BitsToF32 into one load,
// which matters on the fp16 fast path: every GEMM decodes its binary16
// operands into fp32 scratch before accumulating.
var (
	f16DecodeOnce  sync.Once
	f16DecodeTable []float32
)

func f16Table() []float32 {
	f16DecodeOnce.Do(func() {
		f16DecodeTable = make([]float32, 1<<16)
		for h := 0; h < 1<<16; h++ {
			f16DecodeTable[h] = F16BitsToF32(uint16(h))
		}
	})
	return f16DecodeTable
}

// EncodeF16Slice rounds src through binary16 and stores the bit patterns in
// dst (round-to-nearest-even, the Tensor Core load conversion). dst and src
// must have equal length.
func EncodeF16Slice(dst []uint16, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: EncodeF16Slice length mismatch")
	}
	for i, v := range src {
		dst[i] = F32ToF16Bits(v)
	}
}

// DecodeF16Slice expands binary16 bit patterns into float32 values. Because
// every binary16 value is exactly representable in float32,
// DecodeF16Slice∘EncodeF16Slice equals RoundSliceF16 bit for bit — the
// identity the fp16 GEMM route's bit-exactness tests pin.
func DecodeF16Slice(dst []float32, src []uint16) {
	if len(dst) != len(src) {
		panic("tensor: DecodeF16Slice length mismatch")
	}
	table := f16Table()
	for i, h := range src {
		dst[i] = table[h]
	}
}
