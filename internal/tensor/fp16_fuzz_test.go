package tensor

import (
	"math"
	"testing"
)

// f16Next returns the next representable binary16 bit pattern above h in
// value order (within one sign, monotone in the bit pattern for positives).
func f16Next(h uint16) uint16 { return h + 1 }

// TestF16TiesRoundToNearestEven pins the tie-breaking rule on the 13 dropped
// mantissa bits: an exactly-halfway value must round to the neighbour with
// the even (LSB-zero) half mantissa, in both directions.
func TestF16TiesRoundToNearestEven(t *testing.T) {
	ulp := float32(math.Ldexp(1, -10)) // half ULP spacing at 1.0 ≤ x < 2
	cases := []struct {
		x    float32
		want uint16
		why  string
	}{
		{1 + ulp/2, 0x3c00, "tie between 0x3c00 and 0x3c01 → even 0x3c00"},
		{1 + ulp + ulp/2, 0x3c02, "tie between 0x3c01 and 0x3c02 → even 0x3c02"},
		{1 + 2*ulp + ulp/2, 0x3c02, "tie between 0x3c02 and 0x3c03 → even 0x3c02"},
		{-(1 + ulp/2), 0xbc00, "negative tie mirrors the positive rule"},
		// Just off the tie in each direction must round to nearest, not even.
		{1 + ulp/2 + ulp/1024, 0x3c01, "barely above the tie rounds up"},
		{1 + ulp/2 - ulp/1024, 0x3c00, "barely below the tie rounds down"},
	}
	for _, c := range cases {
		if got := F32ToF16Bits(c.x); got != c.want {
			t.Errorf("F32ToF16Bits(%.10g) = %#04x, want %#04x (%s)", c.x, got, c.want, c.why)
		}
	}
}

// TestF16ExponentCarry covers round-ups that overflow the half mantissa: the
// +1 must carry into the exponent field (2-ε → 2), across the
// denormal/normal boundary, and past the largest finite half into infinity.
func TestF16ExponentCarry(t *testing.T) {
	// 2 - 2^-12 has all-ones half mantissa at exponent 0; rounding up carries
	// to mantissa zero at exponent 1, i.e. exactly 2.0.
	almostTwo := float32(2 - math.Ldexp(1, -12))
	if got := F32ToF16Bits(almostTwo); got != 0x4000 {
		t.Errorf("F32ToF16Bits(2-2^-12) = %#04x, want 0x4000 (carry into exponent)", got)
	}
	// Largest denormal is (1023/1024)·2^-14 (0x03ff); halfway to the smallest
	// normal 2^-14 must carry across the denormal/normal boundary.
	boundary := float32((1023.5 / 1024) * math.Ldexp(1, -14))
	if got := F32ToF16Bits(boundary); got != 0x0400 {
		t.Errorf("F32ToF16Bits(denormal boundary) = %#04x, want 0x0400", got)
	}
	// 65520 is halfway between 65504 (max finite) and 65536; RNE picks the
	// even mantissa, which after the carry is infinity.
	if got := F32ToF16Bits(65520); got != 0x7c00 {
		t.Errorf("F32ToF16Bits(65520) = %#04x, want 0x7c00 (carry past max exponent)", got)
	}
	// Just below the halfway point stays finite.
	if got := F32ToF16Bits(65519.996); got != 0x7bff {
		t.Errorf("F32ToF16Bits(65519.996) = %#04x, want 0x7bff", got)
	}
}

// TestF16DenormalTies pins RNE inside the denormal range, where the dropped-
// bit count varies with the exponent.
func TestF16DenormalTies(t *testing.T) {
	tiny := math.Ldexp(1, -24) // one denormal ULP
	cases := []struct {
		x    float64
		want uint16
	}{
		{tiny / 2, 0x0000},     // tie between 0 and 1 ulp → even 0
		{tiny * 1.5, 0x0002},   // tie between 1 and 2 ulp → even 2
		{tiny * 2.5, 0x0002},   // tie between 2 and 3 ulp → even 2
		{-tiny / 2, 0x8000},    // signed zero preserved through the tie
		{tiny * 1.501, 0x0002}, // off-tie rounds to nearest
		{tiny * 1.499, 0x0001},
	}
	for _, c := range cases {
		if got := F32ToF16Bits(float32(c.x)); got != c.want {
			t.Errorf("F32ToF16Bits(%g) = %#04x, want %#04x", c.x, got, c.want)
		}
	}
}

// TestF16SliceCodecMatchesScalar pins the slice codec to the scalar
// conversions: encode is F32ToF16Bits elementwise, and decode∘encode is
// RoundSliceF16 bit for bit (the identity the fp16 GEMM route relies on).
func TestF16SliceCodecMatchesScalar(t *testing.T) {
	src := RandN(11, 3, 257).Data()
	src = append(src, 0, float32(math.Inf(1)), float32(math.Inf(-1)),
		65504, -65504, 65520, float32(math.Ldexp(1, -24)), float32(math.Ldexp(1, -25)))
	enc := make([]uint16, len(src))
	EncodeF16Slice(enc, src)
	for i, v := range src {
		if enc[i] != F32ToF16Bits(v) {
			t.Fatalf("EncodeF16Slice[%d] = %#04x, scalar %#04x", i, enc[i], F32ToF16Bits(v))
		}
	}
	dec := make([]float32, len(src))
	DecodeF16Slice(dec, enc)
	rounded := append([]float32(nil), src...)
	RoundSliceF16(rounded)
	for i := range dec {
		if math.Float32bits(dec[i]) != math.Float32bits(rounded[i]) {
			t.Fatalf("decode∘encode diverges from RoundF16 at %d: %x vs %x",
				i, math.Float32bits(dec[i]), math.Float32bits(rounded[i]))
		}
	}
}

// FuzzF16RoundTrip fuzzes the conversion pair over raw float32 bit patterns
// with oracle-free invariants: NaN/Inf preservation, and for finite inputs
// that RoundF16(x) is the NEAREST representable binary16 neighbour of x with
// ties broken to the even mantissa.
func FuzzF16RoundTrip(f *testing.F) {
	seeds := []uint32{
		0x00000000, 0x80000000, // ±0
		0x3f800000, 0xbf800000, // ±1
		0x7f800000, 0xff800000, // ±Inf
		0x7fc00001, 0xffc00000, // NaNs
		0x477fe000, 0x477ff000, // 65504, 65520 (max-finite, overflow tie)
		0x38800000, 0x33800000, // 2^-14 (min normal), 2^-24 (min denormal)
		0x33000000, 0x34000000, // 2^-25 (underflow tie), 2^-23
		0x3f801000, 0x3f803000, // RNE ties at 1+2^-11, 1+3·2^-11
		0x3ffff000, 0x40000000, // exponent-carry at 2-2^-12, 2
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		h := F32ToF16Bits(x)
		r := F16BitsToF32(h)

		switch {
		case math.IsNaN(float64(x)):
			if !math.IsNaN(float64(r)) {
				t.Fatalf("NaN %#08x not preserved: %#04x → %g", bits, h, r)
			}
			return
		case math.IsInf(float64(x), 0):
			if float64(r) != float64(x) {
				t.Fatalf("Inf %g not preserved: %#04x → %g", x, h, r)
			}
			return
		}

		// Idempotence: the rounded value re-encodes to the same bits (modulo
		// the two zero encodings).
		if h2 := F32ToF16Bits(r); h2 != h && !(r == 0 && h2&0x7fff == 0 && h&0x7fff == 0) {
			t.Fatalf("round trip not idempotent: %g → %#04x → %g → %#04x", x, h, r, h2)
		}

		// Sign preservation (including signed zero and underflow-to-zero).
		if math.Signbit(float64(x)) != (h&0x8000 != 0) {
			t.Fatalf("sign of %g lost in %#04x", x, h)
		}

		ax := math.Abs(float64(x))
		if ax >= 65520 {
			// At and past the overflow tie, RNE saturates to infinity.
			if h&0x7fff != 0x7c00 {
				t.Fatalf("|%g| ≥ 65520 must round to Inf, got %#04x", x, h)
			}
			return
		}
		if math.IsInf(float64(r), 0) {
			t.Fatalf("|%g| < 65520 rounded to Inf", x)
		}

		// Nearest-neighbour property on the magnitude lattice: no other
		// binary16 value is strictly closer, and exact ties land on an even
		// mantissa.
		mag := h & 0x7fff
		err := math.Abs(float64(r) - ax)
		if h&0x8000 != 0 {
			err = math.Abs(float64(r) + ax) // compare magnitudes
		}
		check := func(nb uint16) {
			alt := math.Abs(float64(F16BitsToF32(nb)))
			altErr := math.Abs(alt - ax)
			if altErr < err {
				t.Fatalf("%g: %#04x (err %g) is not nearest, %#04x err %g", x, h, err, nb, altErr)
			}
			if altErr == err && alt != math.Abs(float64(r)) && mag&1 != 0 {
				t.Fatalf("%g: tie broken to odd mantissa %#04x over %#04x", x, h, nb)
			}
		}
		if mag > 0 {
			check(h - 1) // one step toward zero, same sign
		}
		if mag < 0x7bff {
			check(f16Next(h)) // one step away from zero
		}
	})
}
