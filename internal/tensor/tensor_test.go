package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.NumElements() != 6 {
		t.Fatalf("NumElements = %d, want 6", x.NumElements())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("shape = %v, want [2 3]", x.Shape())
	}
}

func TestNewZeroDim(t *testing.T) {
	x := New(0, 5)
	if x.NumElements() != 0 {
		t.Fatalf("NumElements = %d, want 0", x.NumElements())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceNoCopy(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	x := FromSlice(data, 2, 2)
	data[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("FromSlice must wrap without copying")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data()[5] != 7 {
		t.Fatalf("row-major layout violated: data=%v", x.Data())
	}
	if x.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", x.At(1, 2))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	x.At(0, 3)
}

func TestAtRankMismatchPanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rank mismatch")
		}
	}()
	x.At(1)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(9, 0, 1)
	if x.Data()[1] != 9 {
		t.Fatal("reshape must alias the same data")
	}
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("reshape shape = %v", y.Shape())
	}
}

func TestReshapeVolumeMismatchPanics(t *testing.T) {
	x := New(2, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on volume mismatch")
		}
	}()
	x.Reshape(5, 3)
}

func TestRowView(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if r.NumElements() != 3 || r.At(0) != 4 {
		t.Fatalf("Row(1) = %v", r.Data())
	}
	r.Set(40, 0)
	if x.At(1, 0) != 40 {
		t.Fatal("Row must return a view")
	}
}

func TestSliceAxis0(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 4, 2)
	s := x.SliceAxis0(1, 3)
	want := []float32{3, 4, 5, 6}
	for i, v := range s.Data() {
		if v != want[i] {
			t.Fatalf("slice data = %v, want %v", s.Data(), want)
		}
	}
	if s.Dim(0) != 2 || s.Dim(1) != 2 {
		t.Fatalf("slice shape = %v", s.Shape())
	}
}

func TestSliceAxis0BoundsPanics(t *testing.T) {
	x := New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad bounds")
		}
	}()
	x.SliceAxis0(3, 5)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestFillZero(t *testing.T) {
	x := New(3)
	x.Fill(2.5)
	for _, v := range x.Data() {
		if v != 2.5 {
			t.Fatalf("Fill failed: %v", x.Data())
		}
	}
	x.Zero()
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatalf("Zero failed: %v", x.Data())
		}
	}
}

func TestCopyFrom(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := New(4)
	y.CopyFrom(x)
	if y.At(3) != 4 {
		t.Fatalf("CopyFrom: %v", y.Data())
	}
}

func TestMaxAbsDiffAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.001, 3}, 3)
	d := a.MaxAbsDiff(b)
	if math.Abs(d-0.001) > 1e-6 {
		t.Fatalf("MaxAbsDiff = %v, want ~0.001", d)
	}
	if !a.AllClose(b, 1e-2, 1e-2) {
		t.Fatal("AllClose should accept small diff")
	}
	if a.AllClose(b, 0, 1e-6) {
		t.Fatal("AllClose should reject diff above atol")
	}
}

func TestAllCloseNaN(t *testing.T) {
	a := FromSlice([]float32{float32(math.NaN())}, 1)
	b := FromSlice([]float32{0}, 1)
	if a.AllClose(b, 1, 1) {
		t.Fatal("AllClose must reject NaN")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("equal shapes reported unequal")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("unequal shapes reported equal")
	}
	if New(2, 3).SameShape(New(2, 3, 1)) {
		t.Fatal("different rank reported equal")
	}
}

func TestStringTruncates(t *testing.T) {
	x := New(100).WithName("big")
	s := x.String()
	if len(s) > 200 {
		t.Fatalf("String too long: %q", s)
	}
}

func TestRandNDeterministic(t *testing.T) {
	a := RandN(7, 1, 4, 4)
	b := RandN(7, 1, 4, 4)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("RandN must be deterministic for equal seeds")
	}
	c := RandN(8, 1, 4, 4)
	if a.MaxAbsDiff(c) == 0 {
		t.Fatal("different seeds should produce different tensors")
	}
}

func TestRandUniformRange(t *testing.T) {
	x := RandUniform(3, -1, 1, 1000)
	for _, v := range x.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("uniform value %v outside [-1,1)", v)
		}
	}
}

func TestArange(t *testing.T) {
	x := Arange(4, 0.5)
	want := []float32{0, 0.5, 1, 1.5}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("Arange = %v, want %v", x.Data(), want)
		}
	}
}

func TestVolume(t *testing.T) {
	if Volume([]int{2, 3, 4}) != 24 {
		t.Fatal("Volume failed")
	}
	if Volume(nil) != 1 {
		t.Fatal("Volume of empty shape should be 1")
	}
}

// Property: Reshape never changes the element sequence.
func TestQuickReshapePreservesData(t *testing.T) {
	f := func(seed int64) bool {
		n := 12
		x := RandN(seed, 1, n)
		y := x.Reshape(3, 4).Reshape(2, 6).Reshape(n)
		return x.MaxAbsDiff(y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone + mutate never affects the original.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(seed int64, v float32) bool {
		x := RandN(seed, 1, 8)
		orig := append([]float32(nil), x.Data()...)
		c := x.Clone()
		c.Fill(v)
		for i, e := range x.Data() {
			if e != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
