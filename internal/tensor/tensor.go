// Package tensor provides the dense FP32 tensor type used throughout the
// runtime. Tensors are row-major and contiguous; lightweight views are
// supported for reshape and leading-axis slicing, which is all the
// transformer kernels need.
//
// The design mirrors the paper's runtime (§4.2): tensors are plain buffers
// whose placement is decided by the memory manager, so Tensor deliberately
// carries no allocator state — it can wrap either a Go slice or a region of
// a simulated device chunk.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major FP32 tensor.
type Tensor struct {
	shape   []int
	strides []int
	data    []float32
	name    string
}

// New allocates a zero-filled tensor with the given shape.
// It panics if any dimension is negative; zero-sized dimensions are allowed.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: contiguousStrides(shape),
		data:    make([]float32, n),
	}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d != shape volume %d", len(data), n))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: contiguousStrides(shape),
		data:    data,
	}
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

func contiguousStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= shape[i]
	}
	return strides
}

// WithName sets a debug name and returns the tensor for chaining.
func (t *Tensor) WithName(name string) *Tensor {
	t.name = name
	return t
}

// Name returns the debug name (possibly empty).
func (t *Tensor) Name() string { return t.name }

// Shape returns the tensor shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// Bytes returns the storage size in bytes (4 bytes per FP32 element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Data returns the underlying storage. Mutations are visible to all views.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index. Intended for tests and
// small examples; kernels index Data() directly.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) on axis %d", x, t.shape[i], i))
		}
		off += x * t.strides[i]
	}
	return off
}

// Reshape returns a view with a new shape covering the same data.
// It panics if the volumes differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape volume %d != data length %d", n, len(t.data)))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: contiguousStrides(shape),
		data:    t.data,
		name:    t.name,
	}
}

// Row returns a view of row i of a rank-2 tensor (shape [cols]).
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank 2")
	}
	cols := t.shape[1]
	return FromSlice(t.data[i*cols:(i+1)*cols], cols)
}

// SliceAxis0 returns a view of rows [from,to) along the leading axis.
func (t *Tensor) SliceAxis0(from, to int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: SliceAxis0 on scalar")
	}
	if from < 0 || to > t.shape[0] || from > to {
		panic(fmt.Sprintf("tensor: slice [%d,%d) out of range [0,%d]", from, to, t.shape[0]))
	}
	inner := 1
	for _, d := range t.shape[1:] {
		inner *= d
	}
	shape := append([]int{to - from}, t.shape[1:]...)
	return FromSlice(t.data[from*inner:to*inner], shape...)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	c.name = t.name
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// CopyFrom copies src's data into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: CopyFrom volume mismatch %d != %d", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// t and other. Volumes must match.
func (t *Tensor) MaxAbsDiff(other *Tensor) float64 {
	if len(other.data) != len(t.data) {
		panic("tensor: MaxAbsDiff volume mismatch")
	}
	var maxd float64
	for i := range t.data {
		d := math.Abs(float64(t.data[i]) - float64(other.data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// AllClose reports whether every element of t is within atol+rtol*|other|
// of the corresponding element of other.
func (t *Tensor) AllClose(other *Tensor, rtol, atol float64) bool {
	if len(other.data) != len(t.data) {
		return false
	}
	for i := range t.data {
		a, b := float64(t.data[i]), float64(other.data[i])
		if math.IsNaN(a) || math.IsNaN(b) {
			return false
		}
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// SameShape reports whether t and other have identical shapes.
func (t *Tensor) SameShape(other *Tensor) bool {
	if len(t.shape) != len(other.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != other.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description, truncating large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	if t.name != "" {
		fmt.Fprintf(&b, "%s ", t.name)
	}
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	const maxShow = 8
	n := len(t.data)
	show := n
	if show > maxShow {
		show = maxShow
	}
	b.WriteString(" [")
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n > maxShow {
		fmt.Fprintf(&b, " … (%d total)", n)
	}
	b.WriteByte(']')
	return b.String()
}

// Volume returns the product of the dimensions in shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
