package tensor

import "fmt"

// Packed is the zero-padding (ragged) batch layout: a batch of
// variable-length sequences stored back-to-back as [totalTokens, cols] with
// per-request offsets, instead of zero-padded to [batch, maxLen, cols].
// This is the layout TurboTransformers' variable-length claim rests on —
// competing runtimes pad every request to the batch maximum and burn FLOPs
// on zeros, while the packed path never materialises a padding row.
//
// Request i owns rows [Offset(i), Offset(i+1)) of Data.
type Packed struct {
	data *Tensor // [totalTokens, cols]
	lens []int   // per-request true lengths
	offs []int   // prefix sums, len(lens)+1 entries, offs[0] == 0
}

// NewPacked allocates a zero-filled packed batch with the given per-request
// lengths and row width. Every length must be positive: a packed batch has
// no padding rows to hide an empty request behind.
func NewPacked(lens []int, cols int) *Packed {
	offs, total := prefixSums(lens)
	return &Packed{
		data: New(total, cols),
		lens: append([]int(nil), lens...),
		offs: offs,
	}
}

func prefixSums(lens []int) ([]int, int) {
	if len(lens) == 0 {
		panic("tensor: packed batch needs at least one request")
	}
	offs := make([]int, len(lens)+1)
	for i, n := range lens {
		if n <= 0 {
			panic(fmt.Sprintf("tensor: packed request %d has non-positive length %d", i, n))
		}
		offs[i+1] = offs[i] + n
	}
	return offs, offs[len(lens)]
}

// PackPadded copies the valid rows of a padded [batch, maxLen, cols] tensor
// into a fresh packed batch. lens gives each request's true length.
func PackPadded(padded *Tensor, lens []int) *Packed {
	if padded.Rank() != 3 {
		panic(fmt.Sprintf("tensor: PackPadded wants rank 3, got shape %v", padded.Shape()))
	}
	batch, maxLen, cols := padded.Dim(0), padded.Dim(1), padded.Dim(2)
	if len(lens) != batch {
		panic(fmt.Sprintf("tensor: PackPadded %d lens for batch %d", len(lens), batch))
	}
	p := NewPacked(lens, cols)
	for b, n := range lens {
		if n > maxLen {
			panic(fmt.Sprintf("tensor: PackPadded request %d length %d > maxLen %d", b, n, maxLen))
		}
		src := padded.Data()[b*maxLen*cols : (b*maxLen+n)*cols]
		copy(p.Request(b).Data(), src)
	}
	return p
}

// Data returns the underlying [totalTokens, cols] tensor.
func (p *Packed) Data() *Tensor { return p.data }

// Lens returns the per-request lengths. The slice must not be mutated.
func (p *Packed) Lens() []int { return p.lens }

// Offsets returns the row prefix sums (len = Batch()+1, Offsets()[0] == 0).
// The slice must not be mutated.
func (p *Packed) Offsets() []int { return p.offs }

// Offset returns the first row of request i.
func (p *Packed) Offset(i int) int { return p.offs[i] }

// Batch returns the number of requests.
func (p *Packed) Batch() int { return len(p.lens) }

// Cols returns the row width.
func (p *Packed) Cols() int { return p.data.Dim(1) }

// TotalTokens returns the number of real rows — the batch's actual work.
func (p *Packed) TotalTokens() int { return p.offs[len(p.lens)] }

// MaxLen returns the longest request length (what padding would stretch
// every request to).
func (p *Packed) MaxLen() int {
	m := 0
	for _, n := range p.lens {
		if n > m {
			m = n
		}
	}
	return m
}

// SumSqLens returns Σ len_i² — the element count (per head) of the packed
// attention-score blocks, the quadratic analogue of TotalTokens.
func (p *Packed) SumSqLens() int64 {
	var s int64
	for _, n := range p.lens {
		s += int64(n) * int64(n)
	}
	return s
}

// PaddedTokens returns Batch()*MaxLen(): the rows a padded execution of the
// same batch would compute.
func (p *Packed) PaddedTokens() int { return p.Batch() * p.MaxLen() }

// PaddingWaste returns the fraction of a padded execution's rows that would
// be padding: 1 - TotalTokens/PaddedTokens.
func (p *Packed) PaddingWaste() float64 {
	return 1 - float64(p.TotalTokens())/float64(p.PaddedTokens())
}

// Request returns a [len_i, cols] view of request i's rows.
func (p *Packed) Request(i int) *Tensor {
	return p.data.SliceAxis0(p.offs[i], p.offs[i+1])
}

// ToPadded scatters the packed rows into a zero-padded
// [batch, maxLen, cols] tensor (padding rows exactly zero), for callers
// that need the dense layout or for oracle comparisons against it.
func (p *Packed) ToPadded() *Tensor {
	batch, maxLen, cols := p.Batch(), p.MaxLen(), p.Cols()
	out := New(batch, maxLen, cols)
	for b, n := range p.lens {
		dst := out.Data()[b*maxLen*cols : (b*maxLen+n)*cols]
		copy(dst, p.Request(b).Data())
	}
	return out
}

// Clone returns a deep copy sharing nothing with p.
func (p *Packed) Clone() *Packed {
	c := NewPacked(p.lens, p.Cols())
	copy(c.data.Data(), p.data.Data())
	return c
}

// LikePacked allocates a zero-filled packed batch with the same request
// structure as p but a different row width.
func (p *Packed) LikePacked(cols int) *Packed {
	return NewPacked(p.lens, cols)
}

// String renders a short description.
func (p *Packed) String() string {
	return fmt.Sprintf("Packed{batch=%d tokens=%d maxLen=%d cols=%d}",
		p.Batch(), p.TotalTokens(), p.MaxLen(), p.Cols())
}
