package tensor

import (
	"math/rand"
	"testing"
)

func TestPackedRoundTrip(t *testing.T) {
	lens := []int{3, 1, 5, 2}
	const cols = 4
	p := NewPacked(lens, cols)
	if p.TotalTokens() != 11 || p.Batch() != 4 || p.MaxLen() != 5 {
		t.Fatalf("bad geometry: %v", p)
	}
	if got := p.SumSqLens(); got != 9+1+25+4 {
		t.Fatalf("SumSqLens = %d", got)
	}
	rng := rand.New(rand.NewSource(1))
	for i := range p.Data().Data() {
		p.Data().Data()[i] = rng.Float32()
	}
	padded := p.ToPadded()
	if padded.Dim(0) != 4 || padded.Dim(1) != 5 || padded.Dim(2) != cols {
		t.Fatalf("padded shape %v", padded.Shape())
	}
	// Padding rows must be exactly zero.
	for b, n := range lens {
		for s := n; s < p.MaxLen(); s++ {
			for c := 0; c < cols; c++ {
				if padded.At(b, s, c) != 0 {
					t.Fatalf("padding row (%d,%d) not zero", b, s)
				}
			}
		}
	}
	back := PackPadded(padded, lens)
	if back.Data().MaxAbsDiff(p.Data()) != 0 {
		t.Fatal("pack(unpack(p)) != p")
	}
}

func TestPackedRequestViewsAlias(t *testing.T) {
	p := NewPacked([]int{2, 3}, 2)
	p.Request(1).Data()[0] = 42
	if p.Data().Data()[2*2] != 42 {
		t.Fatal("Request must view the shared storage")
	}
}

func TestPackedPaddingWaste(t *testing.T) {
	p := NewPacked([]int{1, 1, 1, 5}, 2)
	// 8 real tokens of 20 padded slots → 60% waste.
	if p.PaddedTokens() != 20 || p.PaddingWaste() != 0.6 {
		t.Fatalf("padded=%d waste=%g", p.PaddedTokens(), p.PaddingWaste())
	}
}

func TestPackedRejectsEmptyRequests(t *testing.T) {
	for _, lens := range [][]int{nil, {}, {3, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPacked(%v) did not panic", lens)
				}
			}()
			NewPacked(lens, 2)
		}()
	}
}
