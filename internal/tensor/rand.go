package tensor

import "math/rand"

// RandN fills a new tensor of the given shape with pseudo-normal values
// (mean 0, stddev) drawn from a deterministic source seeded with seed.
// All experiments in this repo use seeded generators so results are
// reproducible run to run, matching the paper's fixed-seed methodology
// (§6.2.1: "the random seed is the same for different tests").
func RandN(seed int64, stddev float32, shape ...int) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()) * stddev
	}
	return t
}

// RandUniform fills a new tensor with uniform values in [lo, hi).
func RandUniform(seed int64, lo, hi float32, shape ...int) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + rng.Float32()*span
	}
	return t
}

// Arange fills a new 1-D tensor with 0,1,...,n-1 scaled by step.
func Arange(n int, step float32) *Tensor {
	t := New(n)
	for i := 0; i < n; i++ {
		t.data[i] = float32(i) * step
	}
	return t
}
