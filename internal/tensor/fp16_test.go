package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestF16KnownValues(t *testing.T) {
	cases := map[float32]uint16{
		0:              0x0000,
		1:              0x3c00,
		-1:             0xbc00,
		0.5:            0x3800,
		2:              0x4000,
		65504:          0x7bff, // max half
		-65504:         0xfbff,
		0.000061035156: 0x0400, // smallest normal half (2^-14)
	}
	for f, want := range cases {
		if got := F32ToF16Bits(f); got != want {
			t.Fatalf("F32ToF16Bits(%g) = %#04x, want %#04x", f, got, want)
		}
		if back := F16BitsToF32(want); back != f {
			t.Fatalf("F16BitsToF32(%#04x) = %g, want %g", want, back, f)
		}
	}
}

func TestF16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if F32ToF16Bits(inf) != 0x7c00 || F32ToF16Bits(-inf) != 0xfc00 {
		t.Fatal("infinity conversion")
	}
	if !math.IsInf(float64(F16BitsToF32(0x7c00)), 1) {
		t.Fatal("infinity round trip")
	}
	nan := float32(math.NaN())
	if h := F32ToF16Bits(nan); h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Fatalf("NaN bits: %#04x", h)
	}
	if !math.IsNaN(float64(F16BitsToF32(0x7e00))) {
		t.Fatal("NaN round trip")
	}
	// Overflow rounds to infinity.
	if F32ToF16Bits(1e6) != 0x7c00 {
		t.Fatal("overflow should saturate to Inf")
	}
	// Tiny values underflow to zero with sign preserved.
	if F32ToF16Bits(1e-10) != 0 || F32ToF16Bits(-1e-10) != 0x8000 {
		t.Fatal("underflow to signed zero")
	}
}

func TestF16Denormals(t *testing.T) {
	// Smallest positive half denormal: 2^-24.
	tiny := float32(math.Ldexp(1, -24))
	if got := F32ToF16Bits(tiny); got != 0x0001 {
		t.Fatalf("denormal bits: %#04x", got)
	}
	if back := F16BitsToF32(0x0001); back != tiny {
		t.Fatalf("denormal round trip: %g vs %g", back, tiny)
	}
	// A mid-range denormal round-trips exactly.
	mid := float32(math.Ldexp(3, -24))
	if RoundF16(mid) != mid {
		t.Fatalf("denormal %g not preserved: %g", mid, RoundF16(mid))
	}
}

// Property: round-tripping a half-representable value is the identity.
func TestQuickF16RoundTripIdempotent(t *testing.T) {
	f := func(bits uint16) bool {
		// Skip NaNs: they round-trip to a canonical quiet NaN.
		v := F16BitsToF32(bits)
		if math.IsNaN(float64(v)) {
			return true
		}
		return F32ToF16Bits(v) == bits || (v == 0 && bits&0x7fff == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative rounding error of normal-range values is within the
// half-precision epsilon (2^-11).
func TestQuickF16RelativeError(t *testing.T) {
	f := func(seed int64) bool {
		x := RandN(seed, 1, 64)
		for _, v := range x.Data() {
			if v == 0 {
				continue
			}
			av := math.Abs(float64(v))
			if av < 6.2e-5 || av > 65000 {
				continue // outside the normal half range
			}
			rel := math.Abs(float64(RoundF16(v))-float64(v)) / av
			if rel > 1.0/2048 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundedF16Tensor(t *testing.T) {
	x := RandN(3, 1, 32)
	r := x.RoundedF16()
	if x.MaxAbsDiff(r) == 0 {
		t.Fatal("rounding should perturb random normals")
	}
	if !r.AllClose(x, 1e-3, 1e-4) {
		t.Fatalf("rounding error too large: %g", r.MaxAbsDiff(x))
	}
	// Original untouched.
	again := x.RoundedF16()
	if again.MaxAbsDiff(r) != 0 {
		t.Fatal("RoundedF16 must not mutate the source")
	}
}
