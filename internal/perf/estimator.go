package perf

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cudasim"
	"repro/internal/reduction"
)

// Estimator prices operators on a GPU. It memoises the cycle-level
// reduction-kernel simulations (they are deterministic in shape) and the
// per-geometry graphs.
type Estimator struct {
	GPU GPU
	dev *cudasim.Device

	mu       sync.Mutex
	redCache map[redKey]time.Duration
}

type redKey struct {
	softmax    bool
	impl       int
	rows, cols int
	lens       string // packed variants: length histogram key ("" for dense)
}

// NewEstimator returns an estimator for the given GPU.
func NewEstimator(gpu GPU) *Estimator {
	return &Estimator{
		GPU:      gpu,
		dev:      cudasim.NewDevice(gpu.Sim),
		redCache: make(map[redKey]time.Duration),
	}
}

// GEMM tile sizes for the quantisation model: work is dispatched in
// tileM×tileN×tileK blocks, so small or ragged dims waste lanes — the
// effect that makes batching profitable (Fig. 7).
const (
	tileM = 64
	tileN = 64
	tileK = 32
)

func roundUp(v, to int) int { return (v + to - 1) / to * to }

// padDim models cuBLAS's tactic selection: very skinny dims dispatch to
// smaller-tile (gemv-class) kernels, so padding tops out near the dim
// itself instead of always charging a full 64-wide tile.
func padDim(v, tile int) int {
	switch {
	case v >= tile:
		return roundUp(v, tile)
	case v > tile/2:
		return tile
	case v > tile/4:
		return tile / 2
	case v > tile/8:
		return tile / 4
	default:
		return tile / 8
	}
}

// GemmTime prices batchCount independent m×n×k GEMMs: padded-tile FLOPs
// against the profile's effective peak scaled by grid occupancy, floored by
// memory traffic, plus one kernel launch.
//
// Occupancy is the effect that makes request batching profitable (Fig. 7):
// a batch-1 short-sequence GEMM launches too few tiles to fill the SMs, so
// its effective throughput collapses; batching multiplies the tile count.
func (e *Estimator) GemmTime(p Profile, batchCount, m, n, k int) time.Duration {
	if batchCount <= 0 || m <= 0 || n <= 0 || k <= 0 {
		return p.LaunchOverhead
	}
	peak := e.GPU.PeakFP32
	bytesPerElem := 4.0
	if p.TensorCore {
		peak = e.GPU.PeakTensorCore
		bytesPerElem = 2.0
	}
	mPad, nPad, kPad := padDim(m, tileM), padDim(n, tileN), padDim(k, tileK)

	// Grid occupancy: output tiles available vs. what saturates the SMs.
	tiles := batchCount * ((mPad + tileM - 1) / tileM) * ((nPad + tileN - 1) / tileN)
	saturation := 3 * e.GPU.Sim.NumSMs
	occ := float64(tiles) / float64(saturation)
	if occ > 1 {
		occ = 1
	}
	eff := p.GemmEff * math.Pow(occ, 0.55)
	const minEff = 0.02
	if eff < minEff {
		eff = minEff
	}

	flops := 2 * float64(batchCount) * float64(mPad) * float64(nPad) * float64(kPad)
	flopTime := flops / (peak * eff)
	bytes := float64(batchCount) * float64(m*k+k*n+m*n) * bytesPerElem
	memTime := bytes / e.GPU.MemBandwidth
	t := flopTime
	if memTime > t {
		t = memTime
	}
	return p.LaunchOverhead + seconds(t)
}

// SoftmaxTime prices a rows×cols batched softmax using the profile's
// simulated kernel algorithm and framework penalty.
func (e *Estimator) SoftmaxTime(p Profile, rows, cols int) time.Duration {
	if rows <= 0 || cols <= 0 {
		return p.LaunchOverhead
	}
	key := redKey{softmax: true, impl: int(p.SoftmaxImpl), rows: rows, cols: cols}
	body := e.cachedReduction(key, func() time.Duration {
		res := reduction.TimeSoftmax(e.dev, p.SoftmaxImpl, rows, cols)
		return e.bodyTime(res)
	})
	return p.LaunchOverhead + time.Duration(float64(body)*p.SoftmaxPenalty)
}

// LayerNormTime prices a rows×cols LayerNorm similarly.
func (e *Estimator) LayerNormTime(p Profile, rows, cols int) time.Duration {
	if rows <= 0 || cols <= 0 {
		return p.LaunchOverhead
	}
	key := redKey{softmax: false, impl: int(p.LayerNormImpl), rows: rows, cols: cols}
	body := e.cachedReduction(key, func() time.Duration {
		res := reduction.TimeLayerNorm(e.dev, p.LayerNormImpl, rows, cols)
		return e.bodyTime(res)
	})
	return p.LaunchOverhead + time.Duration(float64(body)*p.LayerNormPenalty)
}

// SoftmaxPackedTime prices the packed (zero-padding) attention softmax over
// a ragged batch: per-request rows×len reductions grouped by length, as
// TimeSoftmaxPacked simulates them. This is the reduction half of the fused
// qk_scaled_softmax launch chain — the estimator charges ONE LaunchOverhead
// for the whole chain, mirroring the fused kernel's single launch.
func (e *Estimator) SoftmaxPackedTime(p Profile, lens []int, heads int) time.Duration {
	if len(lens) == 0 || heads <= 0 {
		return p.LaunchOverhead
	}
	key := redKey{softmax: true, impl: int(p.SoftmaxImpl), rows: heads, lens: fmt.Sprint(lens)}
	body := e.cachedReduction(key, func() time.Duration {
		res := reduction.TimeSoftmaxPacked(e.dev, p.SoftmaxImpl, lens, heads)
		return e.bodyTime(res)
	})
	return p.LaunchOverhead + time.Duration(float64(body)*p.SoftmaxPenalty)
}

// LayerNormPackedTime prices a packed-batch LayerNorm: sum(lens) rows of
// width hidden, no padding rows ever normalised.
func (e *Estimator) LayerNormPackedTime(p Profile, lens []int, hidden int) time.Duration {
	if len(lens) == 0 || hidden <= 0 {
		return p.LaunchOverhead
	}
	key := redKey{softmax: false, impl: int(p.LayerNormImpl), cols: hidden, lens: fmt.Sprint(lens)}
	body := e.cachedReduction(key, func() time.Duration {
		res := reduction.TimeLayerNormPacked(e.dev, p.LayerNormImpl, lens, hidden)
		return e.bodyTime(res)
	})
	return p.LaunchOverhead + time.Duration(float64(body)*p.LayerNormPenalty)
}

// bodyTime extracts the kernel body (compute/memory bound, excluding the
// simulated launch overhead, which the profile's LaunchOverhead replaces).
func (e *Estimator) bodyTime(res cudasim.Result) time.Duration {
	body := res.ComputeCycles
	if res.MemoryCycles > body {
		body = res.MemoryCycles
	}
	return seconds(e.GPU.Sim.CyclesToSeconds(body))
}

func (e *Estimator) cachedReduction(key redKey, compute func() time.Duration) time.Duration {
	e.mu.Lock()
	if d, ok := e.redCache[key]; ok {
		e.mu.Unlock()
		return d
	}
	e.mu.Unlock()
	d := compute()
	e.mu.Lock()
	e.redCache[key] = d
	e.mu.Unlock()
	return d
}

// ElementwiseTime prices a bandwidth-bound element-wise kernel moving the
// given bytes.
func (e *Estimator) ElementwiseTime(p Profile, bytes int64) time.Duration {
	if bytes <= 0 {
		return p.LaunchOverhead
	}
	return p.LaunchOverhead + seconds(float64(bytes)/(e.GPU.MemBandwidth*p.ElementwiseEff))
}
