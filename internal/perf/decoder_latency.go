package perf

import (
	"time"

	"repro/internal/model"
)

// DecoderLatency prices a full beam-search translation of a srcLen-token
// source sentence with the Seq2Seq decoder (Fig. 9 bottom): tgtLen decode
// steps (≈1:1 with the source for the zh→en workload), each running every
// decoder layer incrementally over the KV cache, plus the per-step vocab
// projection and the one-time cross-attention K/V precomputation.
func (e *Estimator) DecoderLatency(p Profile, cfg model.Config, srcLen int) time.Duration {
	if !cfg.IsDecoder {
		panic("perf: DecoderLatency needs a decoder config")
	}
	tgtLen := srcLen // zh→en length ratio ≈ 1
	if tgtLen > cfg.MaxTargetLen {
		tgtLen = cfg.MaxTargetLen
	}
	beams := cfg.BeamSize
	h, heads, hd, inter := cfg.Hidden, cfg.Heads, cfg.HeadDim(), cfg.Inter

	var total time.Duration

	// Cross-attention K/V projections of the encoder memory: one pair of
	// [srcLen,H]·[H,H] GEMMs per layer, once per sentence.
	total += time.Duration(cfg.Layers) * 2 * e.GemmTime(p, 1, srcLen, h, h)

	// Per-step, per-layer cost. The softmax over the growing cache changes
	// shape every step, so the steps are priced individually.
	for t := 1; t <= tgtLen; t++ {
		var step time.Duration

		perLayer := func() time.Duration {
			var d time.Duration
			// Self-attention projections.
			if p.Fused {
				d += e.GemmTime(p, 1, beams, 3*h, h) // fused QKV
				d += e.ElementwiseTime(p, 2*4*int64(beams*3*h))
			} else {
				d += 3 * e.GemmTime(p, 1, beams, h, h)
				d += 3 * e.ElementwiseTime(p, 2*4*int64(beams*h)) // biases
			}
			// Attention over the cache: scores [beams·heads, 1, t].
			d += e.GemmTime(p, beams*heads, 1, t, hd)
			d += e.SoftmaxTime(p, beams*heads, t)
			d += e.GemmTime(p, beams*heads, 1, hd, t)
			d += e.GemmTime(p, 1, beams, h, h) // output projection
			d += e.LayerNormTime(p, beams, h)

			// Cross-attention (K/V precomputed).
			d += e.GemmTime(p, 1, beams, h, h) // Q projection
			d += e.GemmTime(p, beams*heads, 1, srcLen, hd)
			d += e.SoftmaxTime(p, beams*heads, srcLen)
			d += e.GemmTime(p, beams*heads, 1, hd, srcLen)
			d += e.GemmTime(p, 1, beams, h, h)
			d += e.LayerNormTime(p, beams, h)

			// Feed-forward network.
			d += e.GemmTime(p, 1, beams, inter, h)
			d += e.ElementwiseTime(p, 2*4*int64(beams*inter)) // bias+act
			d += e.GemmTime(p, 1, beams, h, inter)
			d += e.LayerNormTime(p, beams, h)

			if !p.Fused {
				// Unfused runtimes pay separate residual-add kernels.
				d += 3 * e.ElementwiseTime(p, 3*4*int64(beams*h))
			}
			return d
		}()
		step += time.Duration(cfg.Layers) * perLayer

		// Vocabulary projection + beam top-k.
		step += e.GemmTime(p, 1, beams, cfg.Vocab, h)
		step += e.ElementwiseTime(p, 4*int64(beams*cfg.Vocab))

		total += step
	}
	return total
}
