package perf

import (
	"time"

	"repro/internal/reduction"
)

// Profile parameterises one inference runtime over the shared latency
// model. The axes are the ones Table 1 compares: kernel fusion, launch
// overhead, reduction-kernel quality, GEMM tuning, Tensor-Core use, and
// variable-length capability.
type Profile struct {
	Name string

	// Fused selects the Fig. 3b graph (12 ops/layer); unfused runtimes
	// execute the Fig. 3a graph (24 ops/layer).
	Fused bool

	// LaunchOverhead is charged per kernel (dispatch + framework glue).
	LaunchOverhead time.Duration

	// GemmEff is the fraction of peak FLOP/s the runtime's GEMM achieves.
	GemmEff float64

	// TensorCore prices GEMMs at FP16 Tensor-Core rates (Turbo-TC).
	TensorCore bool

	// SoftmaxImpl / LayerNormImpl select the simulated kernel algorithm.
	SoftmaxImpl   reduction.SoftmaxImpl
	LayerNormImpl reduction.LayerNormImpl

	// SoftmaxPenalty / LayerNormPenalty are measured framework
	// inefficiencies on top of the simulated kernel (generic dispatch,
	// extra mask materialisation, non-contiguous layouts). Calibrated so
	// Table 2's "before" proportions land; 1.0 for tuned runtimes.
	SoftmaxPenalty   float64
	LayerNormPenalty float64

	// ElementwiseEff is the fraction of DRAM bandwidth element-wise kernels
	// achieve.
	ElementwiseEff float64

	// VariableLength marks runtimes usable on variable-length input without
	// per-shape preprocessing (Table 1's "Variable-Len" column). Fixed-
	// length engines only appear in the Fig. 14 fixed-shape comparison.
	VariableLength bool

	// Preprocess marks engines needing an offline tuning step (Table 1).
	Preprocess bool
}

// The evaluated runtimes.

// Turbo is the TurboTransformers runtime: fused graph, the paper's
// batch-reduction kernels, no preprocessing, variable-length native.
func Turbo() Profile {
	return Profile{
		Name:           "Turbo",
		Fused:          true,
		LaunchOverhead: 5 * time.Microsecond,
		GemmEff:        0.72,
		SoftmaxImpl:    reduction.SoftmaxTurbo,
		LayerNormImpl:  reduction.LayerNormTurbo,
		SoftmaxPenalty: 1, LayerNormPenalty: 1,
		ElementwiseEff: 0.85,
		VariableLength: true,
	}
}

// TurboTC is Turbo with FP16 Tensor-Core GEMMs enabled (§6.2.1: "minimal
// and acceptable precision loss").
func TurboTC() Profile {
	p := Turbo()
	p.Name = "Turbo-TC"
	p.TensorCore = true
	return p
}

// PyTorch models the v1.5 eager runtime as benchmarked end-to-end in
// Figs. 9 and 14: unfused graph, per-op Python/ATen dispatch (the dominant
// cost at short sequences), generic softmax/LayerNorm kernels.
func PyTorch() Profile {
	return Profile{
		Name:           "PyTorch",
		Fused:          false,
		LaunchOverhead: 22 * time.Microsecond,
		GemmEff:        0.72, // same cuBLAS underneath
		SoftmaxImpl:    reduction.SoftmaxCuDNN,
		LayerNormImpl:  reduction.LayerNormBaseline,
		SoftmaxPenalty: 2.5, LayerNormPenalty: 3,
		ElementwiseEff: 0.6,
		VariableLength: true,
	}
}

// PyTorchLegacyKernels models the older PyTorch kernel implementations the
// paper measured *in isolation* for Table 2 ("execution time of Softmax and
// LayerNorm is measured using PyTorch"): the multi-op LayerNorm
// decomposition and mask-materialising softmax are far slower than the
// end-to-end PyTorch path of Fig. 9, and the paper's own numbers are only
// mutually consistent if the two are separated (see EXPERIMENTS.md).
func PyTorchLegacyKernels() Profile {
	p := PyTorch()
	p.Name = "PyTorch-legacy-kernels"
	p.SoftmaxPenalty = 12
	p.LayerNormPenalty = 25
	return p
}

// ONNXRuntime models onnxruntime-gpu 1.3 with dynamic axes: fused
// transformer ops, decent kernels, slightly behind Turbo's reductions.
func ONNXRuntime() Profile {
	return Profile{
		Name:           "onnxruntime",
		Fused:          true,
		LaunchOverhead: 6 * time.Microsecond,
		GemmEff:        0.72,
		SoftmaxImpl:    reduction.SoftmaxBaseline,
		LayerNormImpl:  reduction.LayerNormBaseline,
		SoftmaxPenalty: 1.1, LayerNormPenalty: 1.1,
		ElementwiseEff: 0.8,
		VariableLength: true,
		Preprocess:     true,
	}
}

// TFXLA models TensorFlow 1.13 + XLA: aggressive fusion after an offline
// compile, fixed shapes only.
func TFXLA() Profile {
	return Profile{
		Name:           "TF-XLA",
		Fused:          true,
		LaunchOverhead: 5 * time.Microsecond,
		GemmEff:        0.68,
		SoftmaxImpl:    reduction.SoftmaxBaseline,
		LayerNormImpl:  reduction.LayerNormBaseline,
		SoftmaxPenalty: 1.1, LayerNormPenalty: 1.1,
		ElementwiseEff: 0.85,
		VariableLength: false,
		Preprocess:     true,
	}
}

// FasterTransformer models NVIDIA's FT v1: hand-fused kernels (the Fig. 4
// classical reductions), well-tuned GEMM algorithm selection.
func FasterTransformer() Profile {
	return Profile{
		Name:           "FasterTransformers",
		Fused:          true,
		LaunchOverhead: 4500 * time.Nanosecond,
		GemmEff:        0.78,
		SoftmaxImpl:    reduction.SoftmaxBaseline,
		LayerNormImpl:  reduction.LayerNormBaseline,
		SoftmaxPenalty: 1, LayerNormPenalty: 1,
		ElementwiseEff: 0.9,
		VariableLength: false,
		Preprocess:     true,
	}
}

// TensorRT models TensorRT 5.1.5: offline-tuned GEMM tactics and thread
// blocks ("may identify the optimal CUDA thread block sizes", §6.2.3).
func TensorRT() Profile {
	return Profile{
		Name:           "TensorRT",
		Fused:          true,
		LaunchOverhead: 3500 * time.Nanosecond,
		GemmEff:        0.84,
		SoftmaxImpl:    reduction.SoftmaxTurbo, // tuned to the same level
		LayerNormImpl:  reduction.LayerNormTurbo,
		SoftmaxPenalty: 1, LayerNormPenalty: 1,
		ElementwiseEff: 0.92,
		VariableLength: false,
		Preprocess:     true,
	}
}

// AllProfiles returns every runtime profile in the paper's comparison
// order (Table 1 / Fig. 14).
func AllProfiles() []Profile {
	return []Profile{PyTorch(), ONNXRuntime(), TFXLA(), FasterTransformer(), TensorRT(), Turbo(), TurboTC()}
}

// VariableLengthProfiles returns the runtimes that can serve
// variable-length requests (the Fig. 9 competitors).
func VariableLengthProfiles() []Profile {
	return []Profile{Turbo(), PyTorch(), ONNXRuntime(), TurboTC()}
}
