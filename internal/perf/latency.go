package perf

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/model"
)

// OpTime is one operator's share of a layer's latency (Fig. 10 rows).
type OpTime struct {
	Name string
	Kind graph.OpKind
	Time time.Duration
}

// graphCache shares built layer graphs across estimators (they are
// immutable and only depend on geometry).
var graphCache sync.Map // layerKey → *graph.Graph

type layerKey struct {
	hidden, heads, inter int
	act                  int
	fused                bool
}

func layerGraph(cfg model.Config, fused bool) *graph.Graph {
	key := layerKey{cfg.Hidden, cfg.Heads, cfg.Inter, int(cfg.Act), fused}
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	var g *graph.Graph
	if fused {
		g = graph.NewEncoderLayerFused(cfg.LayerConfig())
	} else {
		g = graph.NewEncoderLayerUnfused(cfg.LayerConfig())
	}
	graphCache.Store(key, g)
	return g
}

// EncoderLayerBreakdown prices every operator of one encoder layer for the
// profile's graph variant at (batch, seq).
func (e *Estimator) EncoderLayerBreakdown(p Profile, cfg model.Config, batch, seq int) []OpTime {
	g := layerGraph(cfg, p.Fused)
	heads, hd := cfg.Heads, cfg.HeadDim()
	elems := func(id int) int64 { return g.Tensors[id].Elems.Eval(batch, seq) }

	var out []OpTime
	for _, op := range g.Ops {
		var d time.Duration
		switch op.Kind {
		case graph.OpGemm, graph.OpFusedGemmQKV:
			m := int(elems(op.Inputs[0])) / op.Attr.K
			d = e.GemmTime(p, 1, m, op.Attr.N, op.Attr.K)
		case graph.OpBatchedGemmQK:
			d = e.GemmTime(p, batch*heads, seq, seq, hd)
		case graph.OpBatchedGemmPV:
			d = e.GemmTime(p, batch*heads, seq, hd, seq)
		case graph.OpSoftmax:
			d = e.SoftmaxTime(p, batch*heads*seq, seq)
		case graph.OpLayerNorm:
			d = e.LayerNormTime(p, batch*seq, cfg.Hidden)
		case graph.OpAddBiasLayerNorm:
			// The fused kernel's residual read adds one extra pass over the
			// hidden tensor relative to plain LayerNorm.
			d = e.LayerNormTime(p, batch*seq, cfg.Hidden) +
				seconds(float64(elems(op.Outputs[0])*4)/(e.GPU.MemBandwidth*p.ElementwiseEff))
		case graph.OpAddBias, graph.OpActivation, graph.OpAddBiasAct,
			graph.OpTransposeForScore, graph.OpTransposeBack:
			d = e.ElementwiseTime(p, 2*4*elems(op.Outputs[0]))
		case graph.OpResidualAdd:
			d = e.ElementwiseTime(p, 3*4*elems(op.Outputs[0]))
		case graph.OpSplitAddBiasTranspose:
			d = e.ElementwiseTime(p, 2*4*elems(op.Inputs[0]))
		default:
			panic(fmt.Sprintf("perf: unpriced op kind %v", op.Kind))
		}
		out = append(out, OpTime{Name: op.Name, Kind: op.Kind, Time: d})
	}
	return out
}

// EncoderLatency prices a full encoder-stack inference at (batch, seq).
func (e *Estimator) EncoderLatency(p Profile, cfg model.Config, batch, seq int) time.Duration {
	var layer time.Duration
	for _, ot := range e.EncoderLayerBreakdown(p, cfg, batch, seq) {
		layer += ot.Time
	}
	return time.Duration(int64(layer) * int64(cfg.Layers))
}

// Table2Proportions reproduces Table 2's measurement: the share of
// attention-layer time taken by Softmax and LayerNorm, "before" (PyTorch's
// kernel implementations dropped into the Turbo runtime) and "after"
// (Turbo's kernels).
func (e *Estimator) Table2Proportions(cfg model.Config, batch, seq int) (softmaxBefore, softmaxAfter, layernormBefore, layernormAfter float64) {
	turbo := Turbo()
	py := PyTorchLegacyKernels()

	breakdown := e.EncoderLayerBreakdown(turbo, cfg, batch, seq)
	var attnRest, sfAfter, lnAfter time.Duration
	for _, ot := range breakdown {
		if ot.Name == "gemm6" { // FFN starts: attention section over
			break
		}
		switch ot.Kind {
		case graph.OpSoftmax:
			sfAfter += ot.Time
		case graph.OpAddBiasLayerNorm, graph.OpLayerNorm:
			lnAfter += ot.Time
		default:
			attnRest += ot.Time
		}
	}
	sfBefore := e.SoftmaxTime(py, batch*cfg.Heads*seq, seq)
	lnBefore := e.LayerNormTime(py, batch*seq, cfg.Hidden)

	softmaxAfter = ratio(sfAfter, attnRest+sfAfter+lnAfter)
	layernormAfter = ratio(lnAfter, attnRest+sfAfter+lnAfter)
	softmaxBefore = ratio(sfBefore, attnRest+sfBefore+lnAfter)
	layernormBefore = ratio(lnBefore, attnRest+sfAfter+lnBefore)
	return
}

func ratio(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// BatchingNormalizedLatency reproduces Fig. 7's measurement: latency of a
// batch of b identical requests divided by b times the single-request
// latency. Values below 1 mean batching pays.
func (e *Estimator) BatchingNormalizedLatency(p Profile, cfg model.Config, seq, batchSize int) float64 {
	single := e.EncoderLatency(p, cfg, 1, seq)
	batched := e.EncoderLatency(p, cfg, batchSize, seq)
	return float64(batched) / (float64(batchSize) * float64(single))
}

// BatchCost is the scheduler-facing cost function: latency of one batch of
// batchSize requests padded to seq. This is what the warm-up phase records
// into Algorithm 2's cached_cost dictionary.
func (e *Estimator) BatchCost(p Profile, cfg model.Config, seq, batchSize int) time.Duration {
	return e.EncoderLatency(p, cfg, batchSize, seq)
}
