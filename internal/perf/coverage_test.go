package perf

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/model"
)

func TestDecoderTensorCoreFaster(t *testing.T) {
	e := est()
	cfg := model.Seq2SeqDecoder()
	fp32 := e.DecoderLatency(Turbo(), cfg, 60)
	tc := e.DecoderLatency(TurboTC(), cfg, 60)
	if tc >= fp32 {
		t.Fatalf("TC decoder not faster: %v vs %v", tc, fp32)
	}
}

func TestDecoderCapsAtMaxTargetLen(t *testing.T) {
	e := est()
	cfg := model.Seq2SeqDecoder()
	cfg.MaxTargetLen = 10
	a := e.DecoderLatency(Turbo(), cfg, 10)
	b := e.DecoderLatency(Turbo(), cfg, 1000)
	// Beyond the cap only the cross-attention lengths grow, not the number
	// of decode steps — so latency must grow far slower than source length.
	if float64(b) > 6*float64(a) {
		t.Fatalf("target-length cap not applied: %v vs %v", b, a)
	}
}

func TestBreakdownCoversAllOps(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	for _, p := range []Profile{Turbo(), PyTorch()} {
		breakdown := e.EncoderLayerBreakdown(p, cfg, 1, 64)
		wantOps := 12
		if !p.Fused {
			wantOps = 24
		}
		if len(breakdown) != wantOps {
			t.Fatalf("%s: %d ops, want %d", p.Name, len(breakdown), wantOps)
		}
		for _, ot := range breakdown {
			if ot.Time <= 0 {
				t.Fatalf("%s op %s has non-positive time", p.Name, ot.Name)
			}
		}
	}
}

func TestBreakdownGemmShareGrowsWithLength(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	share := func(seq int) float64 {
		var gemm, total time.Duration
		for _, ot := range e.EncoderLayerBreakdown(Turbo(), cfg, 1, seq) {
			total += ot.Time
			if ot.Kind.IsGemm() {
				gemm += ot.Time
			}
		}
		return float64(gemm) / float64(total)
	}
	if share(400) <= share(20)-0.02 {
		t.Fatalf("GEMM share should not shrink with length: %v vs %v", share(400), share(20))
	}
	if share(20) < 0.5 {
		t.Fatalf("GEMMs should dominate even at seq 20: %v", share(20))
	}
}

func TestElementwiseTimeEdges(t *testing.T) {
	e := est()
	p := Turbo()
	if e.ElementwiseTime(p, 0) != p.LaunchOverhead {
		t.Fatal("zero bytes should cost one launch")
	}
	small := e.ElementwiseTime(p, 1<<10)
	big := e.ElementwiseTime(p, 1<<30)
	if big <= small {
		t.Fatal("more bytes must cost more")
	}
}

func TestReductionTimesDegenerate(t *testing.T) {
	e := est()
	p := Turbo()
	if e.SoftmaxTime(p, 0, 10) != p.LaunchOverhead {
		t.Fatal("zero rows")
	}
	if e.LayerNormTime(p, 10, 0) != p.LaunchOverhead {
		t.Fatal("zero cols")
	}
}

func TestPadDim(t *testing.T) {
	cases := map[int]int{1: 8, 8: 8, 9: 16, 16: 16, 17: 32, 33: 64, 64: 64, 65: 128, 130: 192}
	for in, want := range cases {
		if got := padDim(in, 64); got != want {
			t.Fatalf("padDim(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLayerGraphCacheSharesAcrossEstimators(t *testing.T) {
	a := layerGraph(model.BertBase(), true)
	b := layerGraph(model.BertBase(), true)
	if a != b {
		t.Fatal("layer graphs should be cached")
	}
	c := layerGraph(model.BertBase(), false)
	if a == c {
		t.Fatal("fused and unfused must differ")
	}
	if a.Signature() == c.Signature() {
		t.Fatal("signatures must differ")
	}
}

func TestTurboTCInheritsProfile(t *testing.T) {
	tc := TurboTC()
	base := Turbo()
	if !tc.TensorCore || tc.SoftmaxImpl != base.SoftmaxImpl || tc.LaunchOverhead != base.LaunchOverhead {
		t.Fatalf("TC profile: %+v", tc)
	}
}

func TestLegacyKernelProfileSlower(t *testing.T) {
	e := est()
	normal := e.LayerNormTime(PyTorch(), 10000, 768)
	legacy := e.LayerNormTime(PyTorchLegacyKernels(), 10000, 768)
	if legacy <= normal {
		t.Fatal("legacy kernels must be slower than the end-to-end profile")
	}
}

func TestAlbertSlowerThanBert(t *testing.T) {
	e := est()
	bert := e.EncoderLatency(Turbo(), model.BertBase(), 1, 200)
	albert := e.EncoderLatency(Turbo(), model.Albert(), 1, 200)
	distil := e.EncoderLatency(Turbo(), model.DistilBert(), 1, 200)
	if albert < 5*bert {
		t.Fatalf("ALBERT (hidden 4096) should dwarf BERT: %v vs %v", albert, bert)
	}
	if distil >= bert {
		t.Fatalf("DistilBERT should be about half of BERT: %v vs %v", distil, bert)
	}
}

func TestBreakdownPanicsOnUnknownOp(t *testing.T) {
	e := est()
	g := &graph.Graph{Name: "weird", Hidden: 8, Heads: 1, HeadDim: 8, Inter: 8}
	in := g.AddTensor("x", graph.TensorInput, graph.DimExpr{BS: 8})
	out := g.AddTensor("y", graph.TensorOutput, graph.DimExpr{BS: 8})
	g.Input, g.Output = in, out
	g.AddOp(graph.OpKind(99), "mystery", []int{in}, []int{out}, nil, graph.Attr{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// Feed the breakdown loop directly via a fake cache hit.
	graphCachePoison(g)
	e.EncoderLayerBreakdown(Turbo(), model.Config{Name: "weird", Layers: 1, Hidden: 8, Heads: 1, Inter: 8}, 1, 4)
}

// graphCachePoison installs a graph under the key the breakdown will use.
func graphCachePoison(g *graph.Graph) {
	key := layerKey{8, 1, 8, 0, true}
	graphCache.Store(key, g)
}
