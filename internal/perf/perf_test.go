package perf

import (
	"testing"
	"time"

	"repro/internal/model"
)

func est() *Estimator { return NewEstimator(RTX2060()) }

func TestGemmTimeMonotone(t *testing.T) {
	e := est()
	p := Turbo()
	small := e.GemmTime(p, 1, 64, 64, 64)
	big := e.GemmTime(p, 1, 512, 512, 512)
	if big <= small {
		t.Fatalf("bigger gemm not slower: %v vs %v", big, small)
	}
	batched := e.GemmTime(p, 8, 64, 64, 64)
	if batched <= small {
		t.Fatal("batched gemm not slower than single")
	}
}

func TestGemmTileQuantisation(t *testing.T) {
	e := est()
	p := Turbo()
	// Within one gemv-class tile, m=1..8 cost nearly the same (FLOP side is
	// padded identically; only the tiny activation-read bytes differ).
	a := e.GemmTime(p, 1, 1, 2048, 2048)
	b := e.GemmTime(p, 1, 8, 2048, 2048)
	if diff := float64(b-a) / float64(a); diff > 0.02 || diff < 0 {
		t.Fatalf("tile padding should nearly equalise m=1 and m=8: %v vs %v", a, b)
	}
	// Ragged m just past a tile boundary pays for the whole tile.
	c := e.GemmTime(p, 1, tileM+1, 512, 512)
	d := e.GemmTime(p, 1, 2*tileM, 512, 512)
	if c != d {
		t.Fatalf("tile padding should equalise m=%d and m=%d: %v vs %v", tileM+1, 2*tileM, c, d)
	}
}

func TestTensorCoreFaster(t *testing.T) {
	e := est()
	fp32 := e.GemmTime(Turbo(), 1, 1024, 1024, 1024)
	tc := e.GemmTime(TurboTC(), 1, 1024, 1024, 1024)
	if tc >= fp32 {
		t.Fatalf("tensor core not faster: %v vs %v", tc, fp32)
	}
}

func TestGemmDegenerateDims(t *testing.T) {
	e := est()
	if d := e.GemmTime(Turbo(), 0, 10, 10, 10); d != Turbo().LaunchOverhead {
		t.Fatalf("zero batch: %v", d)
	}
}

func TestReductionCacheDeterministic(t *testing.T) {
	e := est()
	a := e.SoftmaxTime(Turbo(), 2400, 128)
	b := e.SoftmaxTime(Turbo(), 2400, 128)
	if a != b {
		t.Fatal("cached reduction time changed")
	}
	if a <= Turbo().LaunchOverhead {
		t.Fatal("softmax body time missing")
	}
}

func TestSoftmaxPenaltyApplied(t *testing.T) {
	e := est()
	turbo := e.SoftmaxTime(Turbo(), 120000, 500)
	py := e.SoftmaxTime(PyTorch(), 120000, 500)
	if py < 3*turbo {
		t.Fatalf("PyTorch softmax should be far slower at scale: %v vs %v", py, turbo)
	}
	legacy := e.SoftmaxTime(PyTorchLegacyKernels(), 120000, 500)
	if legacy < 10*turbo {
		t.Fatalf("legacy-kernel softmax should dominate (Table 2): %v vs %v", legacy, turbo)
	}
}

func TestEncoderLatencyMagnitude(t *testing.T) {
	e := est()
	// BERT base at (1, 500) on RTX 2060 lands ~20 ms in the paper (Fig. 9).
	d := e.EncoderLatency(Turbo(), model.BertBase(), 1, 500)
	if d < 10*time.Millisecond || d > 45*time.Millisecond {
		t.Fatalf("BERT (1,500) latency %v outside the plausible window", d)
	}
	short := e.EncoderLatency(Turbo(), model.BertBase(), 1, 10)
	if short > 5*time.Millisecond {
		t.Fatalf("BERT (1,10) latency %v too large", short)
	}
	if short >= d {
		t.Fatal("latency must grow with sequence length")
	}
}

func TestEncoderLatencyMonotoneInBatch(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	prev := time.Duration(0)
	for _, b := range []int{1, 2, 4, 8, 16} {
		d := e.EncoderLatency(Turbo(), cfg, b, 100)
		if d < prev {
			t.Fatalf("batch %d faster than smaller batch: %v < %v", b, d, prev)
		}
		prev = d
	}
}

// Fig. 9 shape: Turbo beats PyTorch everywhere, most at short sequences;
// onnxruntime is close to Turbo.
func TestFig9Shape(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	for _, seq := range []int{10, 100, 500} {
		turbo := e.EncoderLatency(Turbo(), cfg, 1, seq)
		py := e.EncoderLatency(PyTorch(), cfg, 1, seq)
		onnx := e.EncoderLatency(ONNXRuntime(), cfg, 1, seq)
		if py <= turbo {
			t.Fatalf("seq %d: PyTorch (%v) should be slower than Turbo (%v)", seq, py, turbo)
		}
		r := float64(onnx) / float64(turbo)
		if r < 0.85 || r > 1.45 {
			t.Fatalf("seq %d: onnxrt/turbo ratio %.2f outside the paper's band", seq, r)
		}
	}
	// Speedup over PyTorch shrinks as GEMMs dominate.
	shortGain := float64(e.EncoderLatency(PyTorch(), cfg, 1, 10)) / float64(e.EncoderLatency(Turbo(), cfg, 1, 10))
	longGain := float64(e.EncoderLatency(PyTorch(), cfg, 1, 500)) / float64(e.EncoderLatency(Turbo(), cfg, 1, 500))
	if shortGain <= longGain {
		t.Fatalf("speedup should shrink with length: short %.2f long %.2f", shortGain, longGain)
	}
}

// Fig. 14 shape: TensorRT and FasterTransformer are somewhat faster than
// Turbo on fixed-length input; XLA and onnxruntime somewhat slower.
func TestFig14Ordering(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	var sums [5]float64
	grid := []struct{ b, s int }{{1, 40}, {1, 200}, {20, 40}, {20, 200}}
	for _, g := range grid {
		turbo := float64(e.EncoderLatency(Turbo(), cfg, g.b, g.s))
		sums[0] += float64(e.EncoderLatency(PyTorch(), cfg, g.b, g.s)) / turbo
		sums[1] += float64(e.EncoderLatency(ONNXRuntime(), cfg, g.b, g.s)) / turbo
		sums[2] += float64(e.EncoderLatency(TFXLA(), cfg, g.b, g.s)) / turbo
		sums[3] += float64(e.EncoderLatency(FasterTransformer(), cfg, g.b, g.s)) / turbo
		sums[4] += float64(e.EncoderLatency(TensorRT(), cfg, g.b, g.s)) / turbo
	}
	n := float64(len(grid))
	avgPy, avgOnnx, avgXLA, avgFT, avgTRT := sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n
	if avgPy < 1.2 {
		t.Fatalf("avg speedup vs PyTorch %.2f, want >= 1.2", avgPy)
	}
	if avgOnnx < 1.0 || avgOnnx > 1.35 {
		t.Fatalf("avg speedup vs onnxrt %.2f, want ~1.1", avgOnnx)
	}
	if avgXLA < 1.0 || avgXLA > 1.4 {
		t.Fatalf("avg speedup vs XLA %.2f, want ~1.1", avgXLA)
	}
	if avgFT > 1.05 {
		t.Fatalf("FasterTransformer should be at least as fast: %.2f", avgFT)
	}
	if avgTRT > 1.0 {
		t.Fatalf("TensorRT should be faster: %.2f", avgTRT)
	}
}

// Table 2 shape: the PyTorch kernels dominate attention before the
// optimisation and become minor after.
func TestTable2Shape(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	sfB, sfA, lnB, lnA := e.Table2Proportions(cfg, 20, 500)
	if sfB < 0.5 {
		t.Fatalf("(20,500) softmax before = %.2f, want large (paper: 0.91)", sfB)
	}
	if sfA > 0.35 {
		t.Fatalf("(20,500) softmax after = %.2f, want small (paper: 0.15)", sfA)
	}
	if lnB < 0.2 {
		t.Fatalf("(20,500) layernorm before = %.2f, want large (paper: 0.83)", lnB)
	}
	if lnA > 0.2 {
		t.Fatalf("(20,500) layernorm after = %.2f, want small (paper: 0.04)", lnA)
	}
	// Before must exceed after everywhere.
	for _, sh := range []struct{ b, s int }{{1, 10}, {1, 100}, {20, 10}, {20, 100}} {
		sfB, sfA, lnB, lnA := e.Table2Proportions(cfg, sh.b, sh.s)
		if sfB <= sfA || lnB <= lnA {
			t.Fatalf("(%d,%d): before must exceed after: sf %.3f/%.3f ln %.3f/%.3f",
				sh.b, sh.s, sfB, sfA, lnB, lnA)
		}
	}
}

// Fig. 7 shape: batching reduces per-request latency, most for short
// sequences.
func TestFig7BatchingGain(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	shortGain := e.BatchingNormalizedLatency(Turbo(), cfg, 10, 15)
	longGain := e.BatchingNormalizedLatency(Turbo(), cfg, 200, 15)
	if shortGain > 0.5 {
		t.Fatalf("short-seq batching gain too weak: %.2f", shortGain)
	}
	if longGain < shortGain {
		t.Fatalf("long sequences should benefit less: %.2f vs %.2f", longGain, shortGain)
	}
	if longGain > 1.1 {
		t.Fatalf("batching should not hurt much at seq 200: %.2f", longGain)
	}
	// Monotone-ish improvement with batch size at short seq.
	if e.BatchingNormalizedLatency(Turbo(), cfg, 10, 2) < e.BatchingNormalizedLatency(Turbo(), cfg, 10, 15) {
		t.Fatal("larger batches should amortise better at short seq")
	}
}

func TestDecoderLatencyShape(t *testing.T) {
	e := est()
	cfg := model.Seq2SeqDecoder()
	d30 := e.DecoderLatency(Turbo(), cfg, 30)
	d140 := e.DecoderLatency(Turbo(), cfg, 140)
	if d30 >= d140 {
		t.Fatal("decoder latency must grow with source length")
	}
	// Paper's Fig. 9: roughly 100 ms at 30 to 300 ms at 140.
	if d30 < 20*time.Millisecond || d30 > 300*time.Millisecond {
		t.Fatalf("decoder latency at 30 = %v, outside plausible window", d30)
	}
	if d140 < 100*time.Millisecond || d140 > 900*time.Millisecond {
		t.Fatalf("decoder latency at 140 = %v, outside plausible window", d140)
	}
	// PyTorch slower (paper: 1.14–1.20×; our launch-overhead model lands
	// nearer 2.4× — the decoder is dispatch-bound, see EXPERIMENTS.md).
	r := float64(e.DecoderLatency(PyTorch(), cfg, 100)) / float64(e.DecoderLatency(Turbo(), cfg, 100))
	if r < 1.05 || r > 2.6 {
		t.Fatalf("decoder PyTorch/Turbo ratio %.2f outside band", r)
	}
}

func TestDecoderLatencyPanicsOnEncoderConfig(t *testing.T) {
	e := est()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.DecoderLatency(Turbo(), model.BertBase(), 30)
}

func TestProfilesComplete(t *testing.T) {
	if len(AllProfiles()) != 7 {
		t.Fatalf("profiles: %d", len(AllProfiles()))
	}
	for _, p := range AllProfiles() {
		if p.Name == "" || p.GemmEff <= 0 || p.GemmEff > 1 || p.ElementwiseEff <= 0 {
			t.Fatalf("bad profile %+v", p)
		}
	}
	for _, p := range VariableLengthProfiles() {
		if !p.VariableLength {
			t.Fatalf("%s in variable-length set but not variable-length", p.Name)
		}
	}
}

func TestBatchCostMatchesEncoderLatency(t *testing.T) {
	e := est()
	cfg := model.BertBase()
	if e.BatchCost(Turbo(), cfg, 64, 4) != e.EncoderLatency(Turbo(), cfg, 4, 64) {
		t.Fatal("BatchCost must be the batched encoder latency")
	}
}

func TestGPUConfigs(t *testing.T) {
	for _, g := range []GPU{RTX2060(), TeslaV100(), TeslaM40()} {
		if g.PeakFP32 <= 0 || g.MemBandwidth <= 0 {
			t.Fatalf("bad GPU: %+v", g)
		}
	}
}
