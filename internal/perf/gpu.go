// Package perf is the analytic GPU latency model behind the end-to-end
// experiments (Figs. 7, 9, 10, 14; Tables 2, 4, 5 via the scheduler's cost
// dictionary). It prices each operator of a model's computation graph:
//
//   - GEMMs with a tile-quantisation roofline (padded-tile FLOPs against a
//     profile-specific fraction of peak, floored by DRAM bandwidth),
//   - batch reductions (Softmax/LayerNorm) with cycle counts taken from the
//     cudasim warp-level simulation of the actual kernel algorithms,
//   - element-wise kernels as bandwidth-bound streams,
//   - a per-kernel launch overhead, which is what fusion saves.
//
// Runtime baselines (PyTorch, onnxruntime, TF-XLA, FasterTransformer,
// TensorRT) are profiles over this one model: the paper credits their
// differences to exactly these axes (Table 1), so encoding them as profile
// parameters isolates what the paper varies.
package perf

import (
	"time"

	"repro/internal/cudasim"
)

// GPU combines the cycle-level device model with the headline rates the
// analytic roofline needs.
type GPU struct {
	Sim cudasim.Config
	// PeakFP32 is the FP32 FLOP/s of the CUDA cores.
	PeakFP32 float64
	// PeakTensorCore is the effective FLOP/s of FP16 Tensor-Core GEMM
	// (end-to-end achievable, not the marketing peak).
	PeakTensorCore float64
	// MemBandwidth is DRAM bandwidth in bytes/s.
	MemBandwidth float64
}

// RTX2060 is the end-to-end evaluation GPU (§6): 1920 CUDA cores @ 1.68 GHz,
// 336 GB/s GDDR6, FP16 Tensor Cores.
func RTX2060() GPU {
	return GPU{
		Sim:            cudasim.RTX2060(),
		PeakFP32:       6.45e12,
		PeakTensorCore: 25.8e12,
		MemBandwidth:   336e9,
	}
}

// TeslaV100 is the kernel-study GPU (Fig. 5): 80 SMs, 900 GB/s HBM2.
func TeslaV100() GPU {
	return GPU{
		Sim:            cudasim.TeslaV100(),
		PeakFP32:       14e12,
		PeakTensorCore: 56e12,
		MemBandwidth:   900e9,
	}
}

// TeslaM40 is referenced by the allocation-stall measurement in §4.2.
func TeslaM40() GPU {
	return GPU{
		Sim:            cudasim.TeslaV100(), // Maxwell sim params unimportant here
		PeakFP32:       6.8e12,
		PeakTensorCore: 0,
		MemBandwidth:   288e9,
	}
}

// seconds converts a float duration safely into time.Duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
