package perf

import "testing"

// TestSoftmaxPackedCheaperThanPadded: on a ragged batch the packed softmax
// prices only each request's own [heads, len, len] score block, so it must
// come in under the padded kernel's batch·heads·maxLen × maxLen sweep.
func TestSoftmaxPackedCheaperThanPadded(t *testing.T) {
	e := est()
	p := Turbo()
	lens := []int{7, 19, 33, 64}
	heads := 12
	maxLen := 64
	packed := e.SoftmaxPackedTime(p, lens, heads)
	padded := e.SoftmaxTime(p, len(lens)*heads*maxLen, maxLen)
	if packed >= padded {
		t.Fatalf("packed softmax %v not cheaper than padded %v", packed, padded)
	}
	// Memoised second call must agree exactly.
	if again := e.SoftmaxPackedTime(p, lens, heads); again != packed {
		t.Fatalf("packed softmax not deterministic: %v vs %v", again, packed)
	}
}

// TestLayerNormPackedMatchesRowSum: the LayerNorm kernel is row-wise, so the
// packed variant over lens must equal the dense kernel over Σ lens rows.
func TestLayerNormPackedMatchesRowSum(t *testing.T) {
	e := est()
	p := Turbo()
	lens := []int{5, 11, 16}
	hidden := 768
	packed := e.LayerNormPackedTime(p, lens, hidden)
	dense := e.LayerNormTime(p, 5+11+16, hidden)
	if packed != dense {
		t.Fatalf("packed layernorm %v != dense row-sum %v", packed, dense)
	}
}
