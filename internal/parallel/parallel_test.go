package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	const n = 1000
	var hits [n]int32
	For(n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For must not invoke fn for n<=0")
	}
}

func TestForSmallRunsInline(t *testing.T) {
	var count int // no atomics: if this ran concurrently the race detector would bark
	For(3, 100, func(lo, hi int) { count += hi - lo })
	if count != 3 {
		t.Fatalf("count=%d", count)
	}
}

func TestForGrainClamp(t *testing.T) {
	var total int64
	For(50, 0, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
	if total != 50 {
		t.Fatalf("total=%d", total)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 99*100/2 {
		t.Fatalf("sum=%d", sum)
	}
}

// Property: ranges partition [0,n) exactly for arbitrary n and grain.
func TestQuickForPartitions(t *testing.T) {
	f := func(rawN uint16, rawGrain uint8) bool {
		n := int(rawN % 2048)
		grain := int(rawGrain)
		var total int64
		For(n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				panic("bad range")
			}
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(max(n, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
