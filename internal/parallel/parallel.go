// Package parallel provides the tiny data-parallel looping helpers the CPU
// kernels share. It is the Go-side analogue of launching a grid of thread
// blocks: work is split into contiguous ranges executed by a bounded set of
// goroutines.
package parallel

import (
	"runtime"
	"sync"
)

// For splits [0,n) into contiguous ranges of at least grain elements and
// runs fn on each range concurrently. fn must be safe to call concurrently
// on disjoint ranges. If the problem is too small to benefit, fn runs inline.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := runtime.GOMAXPROCS(0)
	maxChunks := (n + grain - 1) / grain
	if workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < grain {
		chunk = grain
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs fn(i) for i in [0,n) with bounded parallelism, one index at a
// time. Use For when the per-index work is small.
func ForEach(n int, fn func(i int)) {
	For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
