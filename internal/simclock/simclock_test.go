package simclock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventsFireInOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order: %v", order)
	}
	if s.Now() != 10 {
		t.Fatalf("clock should advance to until: %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var events []float64
	s.After(1, func() {
		events = append(events, s.Now())
		s.After(2, func() { events = append(events, s.Now()) })
	})
	s.Run(5)
	if len(events) != 2 || events[0] != 1 || events[1] != 3 {
		t.Fatalf("events: %v", events)
	}
}

func TestRunStopsAtLimit(t *testing.T) {
	s := New()
	fired := false
	s.At(5, func() { fired = true })
	s.Run(4)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if s.Pending() != 1 {
		t.Fatal("event should remain queued")
	}
	s.Run(5)
	if !fired {
		t.Fatal("event at exactly the limit should fire")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.After(-1, func() {})
}

func TestPoissonDeterministic(t *testing.T) {
	times := func(seed int64) []float64 {
		s := New()
		var ts []float64
		s.PoissonArrivals(100, seed, 1, func(i int64) { ts = append(ts, s.Now()) })
		s.Run(1)
		return ts
	}
	a, b := times(7), times(7)
	if len(a) != len(b) {
		t.Fatal("non-deterministic arrival count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic arrival times")
		}
	}
	c := times(8)
	if len(a) == len(c) && len(a) > 0 && a[0] == c[0] {
		t.Fatal("different seeds should differ")
	}
}

// Property: Poisson arrival counts concentrate near rate×duration.
func TestQuickPoissonRate(t *testing.T) {
	f := func(seed int64) bool {
		s := New()
		count := 0
		const rate, dur = 200.0, 5.0
		s.PoissonArrivals(rate, seed, dur, func(i int64) { count++ })
		s.Run(dur)
		mean := rate * dur
		// 5 sigma window.
		dev := 5 * math.Sqrt(mean)
		return float64(count) > mean-dev && float64(count) < mean+dev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	s := New()
	s.PoissonArrivals(0, 1, 10, func(i int64) { t.Fatal("no arrivals expected") })
	s.Run(10)
}

func TestLatencyStats(t *testing.T) {
	l := NewLatencyStats()
	if !math.IsNaN(l.Avg()) {
		t.Fatal("empty avg should be NaN")
	}
	l.Add(2)
	l.Add(4)
	l.Add(9)
	if l.Count != 3 || l.Min != 2 || l.Max != 9 {
		t.Fatalf("stats: %+v", l)
	}
	if l.Avg() != 5 {
		t.Fatalf("avg: %v", l.Avg())
	}
}

// Property: thinned non-homogeneous arrivals concentrate near ∫rate dt per
// segment — here a flash crowd whose three phases have known areas.
func TestQuickVaryingArrivalsRate(t *testing.T) {
	f := func(seed int64) bool {
		s := New()
		const base, peak = 40.0, 400.0
		// base for 5s, ramp 1s, hold 3s at peak, ramp 1s, base for 5s.
		rate := FlashCrowdRate(base, peak, 5, 1, 3, 1)
		var before, during, after int
		s.VaryingArrivals(rate, peak, seed, 15, func(i int64) {
			switch now := s.Now(); {
			case now < 5:
				before++
			case now <= 10:
				during++
			default:
				after++
			}
		})
		s.Run(15)
		okSeg := func(count int, mean float64) bool {
			dev := 5 * math.Sqrt(mean)
			return float64(count) > mean-dev && float64(count) < mean+dev
		}
		// Areas: 5·base; ramps contribute (base+peak)/2 each plus 3·peak; 5·base.
		return okSeg(before, 5*base) && okSeg(during, (base+peak)+3*peak) && okSeg(after, 5*base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// VaryingArrivals with the same seed is bit-deterministic, and a rate above
// the thinning bound panics.
func TestVaryingArrivalsDeterminismAndBound(t *testing.T) {
	times := func() []float64 {
		s := New()
		var ts []float64
		s.VaryingArrivals(DiurnalRate(10, 100, 20), 100, 7, 20, func(i int64) { ts = append(ts, s.Now()) })
		s.Run(20)
		return ts
	}
	a, b := times(), times()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rate above maxRate did not panic")
		}
	}()
	s := New()
	s.VaryingArrivals(func(float64) float64 { return 50 }, 10, 1, 5, func(int64) {})
}

// DiurnalRate troughs at t=0 and peaks at half period.
func TestDiurnalRateShape(t *testing.T) {
	r := DiurnalRate(2, 10, 8)
	if got := r(0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("trough: %v", got)
	}
	if got := r(4); math.Abs(got-10) > 1e-9 {
		t.Fatalf("peak: %v", got)
	}
	if got := r(8); math.Abs(got-2) > 1e-9 {
		t.Fatalf("full period: %v", got)
	}
}
