// Package simclock is a deterministic discrete-event simulation core with a
// virtual clock: the substrate for the serving-throughput experiments
// (Figs. 15–16, Tables 4–5), where thousands of Poisson-arriving requests
// per second must be replayed reproducibly and far faster than real time.
package simclock

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
)

// event is one scheduled callback.
type event struct {
	at  float64
	seq int64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) {
	*h = append(*h, x.(*event))
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. Zero value is not usable; call New.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
}

// New returns an empty simulation at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics — it is a logic bug in the model.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic("simclock: event scheduled in the past")
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) {
	if d < 0 {
		panic("simclock: negative delay")
	}
	s.At(s.now+d, fn)
}

// Run processes events in time order until the queue empties or the clock
// passes until. Events scheduled exactly at until still fire.
func (s *Sim) Run(until float64) {
	for s.events.Len() > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events (for tests).
func (s *Sim) Pending() int { return s.events.Len() }

// PoissonArrivals schedules fn for each arrival of a Poisson process with
// the given rate (events/second), from the current time until the limit.
// The sequence is fully determined by seed.
func (s *Sim) PoissonArrivals(rate float64, seed int64, until float64, fn func(i int64)) {
	if rate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	t := s.now
	var i int64
	for {
		t += rng.ExpFloat64() / rate
		if t > until {
			return
		}
		idx := i
		s.At(t, func() { fn(idx) })
		i++
	}
}

// VaryingArrivals schedules fn for each arrival of a NON-homogeneous
// Poisson process whose instantaneous rate is rate(t) events/second, from
// the current time until the limit — the diurnal and flash-crowd traces
// the autoscaler is validated against. Implemented by thinning (Lewis &
// Shedler): candidates arrive at the constant maxRate and are kept with
// probability rate(t)/maxRate, so the sequence is fully determined by
// seed. rate(t) exceeding maxRate is a modelling bug and panics.
func (s *Sim) VaryingArrivals(rate func(t float64) float64, maxRate float64, seed int64, until float64, fn func(i int64)) {
	if maxRate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	t := s.now
	var i int64
	for {
		t += rng.ExpFloat64() / maxRate
		if t > until {
			return
		}
		r := rate(t)
		if r > maxRate {
			panic("simclock: rate(t) exceeds maxRate — thinning bound violated")
		}
		if r > 0 && rng.Float64()*maxRate < r {
			idx := i
			s.At(t, func() { fn(idx) })
			i++
		}
	}
}

// DiurnalRate returns a day-shaped rate curve for VaryingArrivals: a raised
// cosine oscillating between base (trough, at t=0) and peak with the given
// period. base may be 0 (dead of night).
func DiurnalRate(base, peak, period float64) func(t float64) float64 {
	return func(t float64) float64 {
		phase := 0.5 * (1 - math.Cos(2*math.Pi*t/period))
		return base + (peak-base)*phase
	}
}

// FlashCrowdRate returns a flash-crowd rate curve for VaryingArrivals:
// steady base load, a linear ramp to peak over rampUp seconds starting at
// start, hold seconds at peak, then a linear ramp back down over rampDown
// seconds — the trace shape that punishes both fixed under-provisioning
// (misses during the crowd) and fixed over-provisioning (idle replicas the
// rest of the run).
func FlashCrowdRate(base, peak, start, rampUp, hold, rampDown float64) func(t float64) float64 {
	return func(t float64) float64 {
		switch {
		case t < start:
			return base
		case t < start+rampUp:
			return base + (peak-base)*(t-start)/rampUp
		case t < start+rampUp+hold:
			return peak
		case t < start+rampUp+hold+rampDown:
			return peak - (peak-base)*(t-start-rampUp-hold)/rampDown
		default:
			return base
		}
	}
}

// LatencyStats accumulates response-latency statistics online. Samples are
// retained so tail percentiles — the metric replica routing is judged by —
// can be computed after the run.
type LatencyStats struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64

	samples []float64
}

// NewLatencyStats returns an empty accumulator.
func NewLatencyStats() *LatencyStats {
	return &LatencyStats{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add records one latency observation (seconds).
func (l *LatencyStats) Add(v float64) {
	l.Count++
	l.Sum += v
	if v < l.Min {
		l.Min = v
	}
	if v > l.Max {
		l.Max = v
	}
	l.samples = append(l.samples, v)
}

// Avg returns the mean latency, or NaN when empty.
func (l *LatencyStats) Avg() float64 {
	if l.Count == 0 {
		return math.NaN()
	}
	return l.Sum / float64(l.Count)
}

// Percentile returns the p-quantile (0 < p ≤ 1) of the recorded samples by
// the nearest-rank method, or NaN when empty. Sorting is deferred to the
// first call, so Add stays O(1) during the run.
func (l *LatencyStats) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return math.NaN()
	}
	if !sort.Float64sAreSorted(l.samples) {
		sort.Float64s(l.samples)
	}
	idx := int(math.Ceil(p*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}
