// Package simclock is a deterministic discrete-event simulation core with a
// virtual clock: the substrate for the serving-throughput experiments
// (Figs. 15–16, Tables 4–5), where thousands of Poisson-arriving requests
// per second must be replayed reproducibly and far faster than real time.
package simclock

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
)

// event is one scheduled callback.
type event struct {
	at  float64
	seq int64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) {
	*h = append(*h, x.(*event))
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. Zero value is not usable; call New.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
}

// New returns an empty simulation at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics — it is a logic bug in the model.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic("simclock: event scheduled in the past")
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) {
	if d < 0 {
		panic("simclock: negative delay")
	}
	s.At(s.now+d, fn)
}

// Run processes events in time order until the queue empties or the clock
// passes until. Events scheduled exactly at until still fire.
func (s *Sim) Run(until float64) {
	for s.events.Len() > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events (for tests).
func (s *Sim) Pending() int { return s.events.Len() }

// PoissonArrivals schedules fn for each arrival of a Poisson process with
// the given rate (events/second), from the current time until the limit.
// The sequence is fully determined by seed.
func (s *Sim) PoissonArrivals(rate float64, seed int64, until float64, fn func(i int64)) {
	if rate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	t := s.now
	var i int64
	for {
		t += rng.ExpFloat64() / rate
		if t > until {
			return
		}
		idx := i
		s.At(t, func() { fn(idx) })
		i++
	}
}

// LatencyStats accumulates response-latency statistics online. Samples are
// retained so tail percentiles — the metric replica routing is judged by —
// can be computed after the run.
type LatencyStats struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64

	samples []float64
}

// NewLatencyStats returns an empty accumulator.
func NewLatencyStats() *LatencyStats {
	return &LatencyStats{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add records one latency observation (seconds).
func (l *LatencyStats) Add(v float64) {
	l.Count++
	l.Sum += v
	if v < l.Min {
		l.Min = v
	}
	if v > l.Max {
		l.Max = v
	}
	l.samples = append(l.samples, v)
}

// Avg returns the mean latency, or NaN when empty.
func (l *LatencyStats) Avg() float64 {
	if l.Count == 0 {
		return math.NaN()
	}
	return l.Sum / float64(l.Count)
}

// Percentile returns the p-quantile (0 < p ≤ 1) of the recorded samples by
// the nearest-rank method, or NaN when empty. Sorting is deferred to the
// first call, so Add stays O(1) during the run.
func (l *LatencyStats) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return math.NaN()
	}
	if !sort.Float64sAreSorted(l.samples) {
		sort.Float64s(l.samples)
	}
	idx := int(math.Ceil(p*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}
