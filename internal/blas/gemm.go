// Package blas implements the dense linear-algebra routines the transformer
// runtime needs: single-precision GEMM with optional transposes, plus the
// batched and strided-batched variants used by multi-head attention
// (batched Q·Kᵀ and scores·V, Fig. 3 "batched stride gemm3/gemm4").
//
// On the paper's system these map to cuBLAS; here they are pure-Go,
// cache-blocked, and parallelised across goroutines (one worker per logical
// CPU), which plays the role of the GPU's SM-level parallelism for the
// functional runtime. Timing of GPU GEMMs for the experiments is handled
// separately by the analytic model in internal/perf.
package blas

import (
	"fmt"
	"runtime"
	"sync"
)

// blockM/blockN/blockK are the cache-blocking tile sizes. They were chosen
// so one A tile plus one B tile fit comfortably in L1 on commodity x86.
const (
	blockM = 64
	blockN = 64
	blockK = 64
)

// Gemm computes C = alpha * op(A) * op(B) + beta * C where op is identity
// or transpose, with row-major storage and leading dimensions lda/ldb/ldc.
// op(A) is m×k and op(B) is k×n; C is m×n.
//
// The call panics on inconsistent dimensions — dimension errors are
// programming bugs in graph construction, not runtime conditions.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemmArgs(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	// Scale C by beta first; the blocked kernel then accumulates.
	scaleC(beta, c, m, n, ldc)
	if k == 0 || alpha == 0 {
		return
	}
	parallelRows(m, func(i0, i1 int) {
		gemmBlock(transA, transB, i0, i1, n, k, alpha, a, lda, b, ldb, c, ldc)
	})
}

func checkGemmArgs(transA, transB bool, m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("blas: negative dimension m=%d n=%d k=%d", m, n, k))
	}
	aRows, aCols := m, k
	if transA {
		aRows, aCols = k, m
	}
	bRows, bCols := k, n
	if transB {
		bRows, bCols = n, k
	}
	if lda < aCols || ldb < bCols || ldc < n {
		panic(fmt.Sprintf("blas: leading dimension too small lda=%d ldb=%d ldc=%d", lda, ldb, ldc))
	}
	if aRows > 0 && len(a) < (aRows-1)*lda+aCols {
		panic(fmt.Sprintf("blas: A too short: len=%d need=%d", len(a), (aRows-1)*lda+aCols))
	}
	if bRows > 0 && len(b) < (bRows-1)*ldb+bCols {
		panic(fmt.Sprintf("blas: B too short: len=%d need=%d", len(b), (bRows-1)*ldb+bCols))
	}
	if m > 0 && len(c) < (m-1)*ldc+n {
		panic(fmt.Sprintf("blas: C too short: len=%d need=%d", len(c), (m-1)*ldc+n))
	}
}

func scaleC(beta float32, c []float32, m, n, ldc int) {
	switch beta {
	case 1:
		return
	case 0:
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			for j := range row {
				row[j] = 0
			}
		}
	default:
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

// gemmBlock accumulates alpha*op(A)*op(B) into C for rows [i0,i1).
func gemmBlock(transA, transB bool, i0, i1, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	switch {
	case !transA && !transB:
		gemmNN(i0, i1, n, k, alpha, a, lda, b, ldb, c, ldc)
	case !transA && transB:
		gemmNT(i0, i1, n, k, alpha, a, lda, b, ldb, c, ldc)
	case transA && !transB:
		gemmTN(i0, i1, n, k, alpha, a, lda, b, ldb, c, ldc)
	default:
		gemmTT(i0, i1, n, k, alpha, a, lda, b, ldb, c, ldc)
	}
}

// gemmNN: C[i,j] += alpha * sum_p A[i,p]*B[p,j]. The p-loop is outermost
// inside each tile so B rows stream sequentially (row-major friendly).
//
// Rows run through a 4-row micro-kernel when the tile is tall enough: each
// loaded B element feeds four output rows, which quadruples arithmetic
// intensity and is what makes a batched decode iteration cheaper per token
// than per-row GEMV-sized calls. Per-element accumulation order over p is
// identical in both kernels (strictly ascending, one multiply-add per
// operation), so a row's result is bit-identical whatever m it is batched
// into — the invariant the continuous-batching correctness tests pin.
func gemmNN(i0, i1, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for jj := 0; jj < n; jj += blockN {
		jMax := min(jj+blockN, n)
		for pp := 0; pp < k; pp += blockK {
			pMax := min(pp+blockK, k)
			i := i0
			for ; i+4 <= i1; i += 4 {
				a0, a1, a2, a3 := a[i*lda:], a[(i+1)*lda:], a[(i+2)*lda:], a[(i+3)*lda:]
				c0, c1, c2, c3 := c[i*ldc:], c[(i+1)*ldc:], c[(i+2)*ldc:], c[(i+3)*ldc:]
				for p := pp; p < pMax; p++ {
					av0, av1, av2, av3 := alpha*a0[p], alpha*a1[p], alpha*a2[p], alpha*a3[p]
					if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
						continue
					}
					brow := b[p*ldb:]
					for j := jj; j < jMax; j++ {
						bv := brow[j]
						c0[j] += av0 * bv
						c1[j] += av1 * bv
						c2[j] += av2 * bv
						c3[j] += av3 * bv
					}
				}
			}
			for ; i < i1; i++ {
				arow := a[i*lda:]
				crow := c[i*ldc:]
				for p := pp; p < pMax; p++ {
					av := alpha * arow[p]
					if av == 0 {
						continue
					}
					brow := b[p*ldb:]
					for j := jj; j < jMax; j++ {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// gemmNT: C[i,j] += alpha * sum_p A[i,p]*B[j,p] — dot products of rows,
// the layout attention uses for Q·Kᵀ.
func gemmNT(i0, i1, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for i := i0; i < i1; i++ {
		arow := a[i*lda : i*lda+k]
		crow := c[i*ldc:]
		for j := 0; j < n; j++ {
			brow := b[j*ldb : j*ldb+k]
			var sum float32
			p := 0
			// 4-way unrolled dot product; the compiler keeps the partials
			// in registers, which roughly doubles throughput here.
			var s0, s1, s2, s3 float32
			for ; p+4 <= k; p += 4 {
				s0 += arow[p] * brow[p]
				s1 += arow[p+1] * brow[p+1]
				s2 += arow[p+2] * brow[p+2]
				s3 += arow[p+3] * brow[p+3]
			}
			sum = s0 + s1 + s2 + s3
			for ; p < k; p++ {
				sum += arow[p] * brow[p]
			}
			crow[j] += alpha * sum
		}
	}
}

func gemmTN(i0, i1, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for i := i0; i < i1; i++ {
		crow := c[i*ldc:]
		for p := 0; p < k; p++ {
			av := alpha * a[p*lda+i]
			if av == 0 {
				continue
			}
			brow := b[p*ldb:]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

func gemmTT(i0, i1, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for i := i0; i < i1; i++ {
		crow := c[i*ldc:]
		for j := 0; j < n; j++ {
			var sum float32
			for p := 0; p < k; p++ {
				sum += a[p*lda+i] * b[j*ldb+p]
			}
			crow[j] += alpha * sum
		}
	}
}

// parallelRows splits [0,m) into contiguous chunks and runs fn on each chunk
// in its own goroutine. Small problems run inline to avoid dispatch cost.
func parallelRows(m int, fn func(i0, i1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	// Below this many rows the goroutine hand-off costs more than it saves.
	const minRowsParallel = 16
	if workers <= 1 || m < minRowsParallel {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := min(i0+chunk, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(i0, i1)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
