package blas

import "fmt"

// StridedBatch describes one group of a grouped strided-batched GEMM: Count
// equally-shaped problems laid out at fixed strides. Grouping problems with
// different shapes into one call is what variable-length (packed) attention
// needs — each request contributes one group of `heads` GEMMs whose m/n/k
// depend on that request's length, so no problem is ever padded to a batch
// maximum. This is the pure-Go analogue of cublasGemmGroupedBatchedEx.
type StridedBatch struct {
	M, N, K int
	A       []float32
	Lda     int
	StrideA int
	B       []float32
	Ldb     int
	StrideB int
	C       []float32
	Ldc     int
	StrideC int
	Count   int
}

// GroupedStridedBatchedGemm performs, for every group g and every batch
// index i in [0, g.Count):
//
//	C_gi = alpha * op(A_gi) * op(B_gi) + beta * C_gi
//
// with A_gi = g.A[i*g.StrideA:], etc. All groups share the transpose flags
// and scalars; shapes vary per group. Problems run in parallel across the
// flattened (group, batch) space.
func GroupedStridedBatchedGemm(transA, transB bool, alpha, beta float32, groups []StridedBatch) {
	// starts[g] = flattened index of group g's first problem.
	starts := make([]int, len(groups)+1)
	for g, grp := range groups {
		if grp.Count < 0 {
			panic(fmt.Sprintf("blas: group %d has negative count %d", g, grp.Count))
		}
		if grp.StrideA < 0 || grp.StrideB < 0 || grp.StrideC < 0 {
			panic(fmt.Sprintf("blas: group %d has a negative stride", g))
		}
		starts[g+1] = starts[g] + grp.Count
	}
	runBatches(starts[len(groups)], func(fi int) {
		// Find the owning group: starts[g] <= fi < starts[g+1].
		g := 0
		for starts[g+1] <= fi {
			g++
		}
		grp := &groups[g]
		i := fi - starts[g]
		a := grp.A[i*grp.StrideA:]
		b := grp.B[i*grp.StrideB:]
		c := grp.C[i*grp.StrideC:]
		checkGemmArgs(transA, transB, grp.M, grp.N, grp.K, a, grp.Lda, b, grp.Ldb, c, grp.Ldc)
		scaleC(beta, c, grp.M, grp.N, grp.Ldc)
		if grp.K == 0 || alpha == 0 || grp.M == 0 || grp.N == 0 {
			return
		}
		gemmBlock(transA, transB, 0, grp.M, grp.N, grp.K, alpha, a, grp.Lda, b, grp.Ldb, c, grp.Ldc)
	})
}
