package blas

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func encoded(src []float32) Half {
	h := make(Half, len(src))
	tensor.EncodeF16Slice(h, src)
	return h
}

func roundedCopy(src []float32) []float32 {
	c := append([]float32(nil), src...)
	tensor.RoundSliceF16(c)
	return c
}

func bitsEqual(t *testing.T, got, want []float32, what string) {
	t.Helper()
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d differs: %g (%#08x) vs %g (%#08x)",
				what, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// TestGemmF16BitIdenticalToRoundedGemm pins the route's foundational
// property: GemmF16 over encoded operands equals Gemm over the same operands
// rounded through binary16, bit for bit, across all four transpose modes,
// padded leading dimensions, and nonzero alpha/beta.
func TestGemmF16BitIdenticalToRoundedGemm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := []struct {
		transA, transB bool
		m, n, k        int
		lda, ldb, ldc  int
		alpha, beta    float32
	}{
		{false, false, 5, 7, 9, 9, 7, 7, 1, 0},
		{false, true, 4, 6, 8, 8, 8, 6, 0.125, 0},
		{true, false, 6, 5, 7, 6, 5, 5, 1, 1},
		{true, true, 3, 4, 5, 3, 5, 4, 2, 0.5},
		{false, false, 8, 8, 8, 11, 13, 9, 1, 0}, // padded leading dims
		{false, true, 1, 33, 16, 16, 16, 33, 0.25, 0},
	}
	for ci, c := range cases {
		aRows, aCols := c.m, c.k
		if c.transA {
			aRows, aCols = c.k, c.m
		}
		bRows, bCols := c.k, c.n
		if c.transB {
			bRows, bCols = c.n, c.k
		}
		a := randSlice(r, (aRows-1)*c.lda+aCols)
		b := randSlice(r, (bRows-1)*c.ldb+bCols)
		cInit := randSlice(r, (c.m-1)*c.ldc+c.n)

		want := append([]float32(nil), cInit...)
		Gemm(c.transA, c.transB, c.m, c.n, c.k, c.alpha, roundedCopy(a), c.lda, roundedCopy(b), c.ldb, c.beta, want, c.ldc)

		got := append([]float32(nil), cInit...)
		GemmF16(c.transA, c.transB, c.m, c.n, c.k, c.alpha, encoded(a), c.lda, encoded(b), c.ldb, c.beta, got, c.ldc)
		bitsEqual(t, got, want, "GemmF16 case "+string(rune('0'+ci)))

		// Mixed-operand variant: fp32 A that is already binary16-valued.
		got2 := append([]float32(nil), cInit...)
		GemmF16A32(c.transA, c.transB, c.m, c.n, c.k, c.alpha, roundedCopy(a), c.lda, encoded(b), c.ldb, c.beta, got2, c.ldc)
		bitsEqual(t, got2, want, "GemmF16A32 case "+string(rune('0'+ci)))
	}
}

// TestGroupedStridedBatchedGemmF16 pins the grouped fp16 route against (a)
// the grouped fp32 route over rounded operands and (b) per-problem GemmF16
// calls, both bit for bit. Shapes mirror decode attention: per-group
// M=1,N=ctx,K=headDim batched over heads, with head-strided operands.
func TestGroupedStridedBatchedGemmF16(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const heads, hd = 3, 8
	hidden := heads * hd
	ctxs := []int{5, 12, 1}

	var groups []StridedBatchF16
	var plain []StridedBatch
	var qs, ks [][]float32
	var outF16, outRef [][]float32
	for _, T := range ctxs {
		q := randSlice(r, hidden)
		k := randSlice(r, T*hidden)
		qs, ks = append(qs, q), append(ks, k)
		g := make([]float32, heads*T)
		w := make([]float32, heads*T)
		outF16, outRef = append(outF16, g), append(outRef, w)
		groups = append(groups, StridedBatchF16{
			M: 1, N: T, K: hd,
			A: encoded(q), Lda: hd, StrideA: hd,
			B: encoded(k), Ldb: hidden, StrideB: hd,
			C: g, Ldc: T, StrideC: T,
			Count: heads,
		})
		plain = append(plain, StridedBatch{
			M: 1, N: T, K: hd,
			A: roundedCopy(q), Lda: hd, StrideA: hd,
			B: roundedCopy(k), Ldb: hidden, StrideB: hd,
			C: w, Ldc: T, StrideC: T,
			Count: heads,
		})
	}
	const alpha = 0.353
	GroupedStridedBatchedGemmF16(false, true, alpha, 0, groups)
	GroupedStridedBatchedGemm(false, true, alpha, 0, plain)
	for i := range outF16 {
		bitsEqual(t, outF16[i], outRef[i], "grouped vs fp32-rounded grouped")
	}

	// Per-problem GemmF16 must agree with the grouped route.
	for i, T := range ctxs {
		for h := 0; h < heads; h++ {
			single := make([]float32, T)
			GemmF16(false, true, 1, T, hd, alpha,
				encoded(qs[i])[h*hd:], hd, encoded(ks[i])[h*hd:], hidden, 0, single, T)
			bitsEqual(t, single, outF16[i][h*T:h*T+T], "grouped vs per-problem")
		}
	}
}

// TestGroupedF16MixedOperands exercises the AF fp32 branch (probs·V shape:
// fp32 probabilities against binary16 values).
func TestGroupedF16MixedOperands(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const heads, hd, T = 2, 4, 6
	hidden := heads * hd
	probs := roundedCopy(randSlice(r, heads*T))
	vals := randSlice(r, T*hidden)
	got := make([]float32, hidden)
	want := make([]float32, hidden)

	GroupedStridedBatchedGemmF16(false, false, 1, 0, []StridedBatchF16{{
		M: 1, N: hd, K: T,
		AF: probs, Lda: T, StrideA: T,
		B: encoded(vals), Ldb: hidden, StrideB: hd,
		C: got, Ldc: hd, StrideC: hd,
		Count: heads,
	}})
	GroupedStridedBatchedGemm(false, false, 1, 0, []StridedBatch{{
		M: 1, N: hd, K: T,
		A: probs, Lda: T, StrideA: T,
		B: roundedCopy(vals), Ldb: hidden, StrideB: hd,
		C: want, Ldc: hd, StrideC: hd,
		Count: heads,
	}})
	bitsEqual(t, got, want, "mixed-operand grouped")
}

// TestGemmScaleInAlphaCommutes pins the identity that lets the fused QK
// kernel fold the softmax scale into GEMM alpha: with the NT kernel's
// per-element `c += alpha*sum` accumulation, scaling via alpha equals
// scaling the output afterwards, bit for bit (IEEE multiply is commutative
// and each output element sees exactly one multiply either way).
func TestGemmScaleInAlphaCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const m, n, k = 7, 9, 16
	a, b := randSlice(r, m*k), randSlice(r, n*k)
	const scale = 0.17677669529663687 // 1/√32

	pre := make([]float32, m*n)
	Gemm(false, true, m, n, k, scale, a, k, b, k, 0, pre, n)

	post := make([]float32, m*n)
	Gemm(false, true, m, n, k, 1, a, k, b, k, 0, post, n)
	for i := range post {
		post[i] *= scale
	}
	bitsEqual(t, pre, post, "alpha-folded scale")
}
