package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gemmRef is an obviously-correct O(mnk) reference used to validate the
// blocked/parallel implementation.
func gemmRef(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	at := func(i, p int) float32 {
		if transA {
			return a[p*lda+i]
		}
		return a[i*lda+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b[j*ldb+p]
		}
		return b[p*ldb+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for p := 0; p < k; p++ {
				sum += float64(at(i, p)) * float64(bt(p, j))
			}
			c[i*ldc+j] = alpha*float32(sum) + beta*c[i*ldc+j]
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func maxDiff(a, b []float32) float64 {
	var d float64
	for i := range a {
		x := math.Abs(float64(a[i]) - float64(b[i]))
		if x > d {
			d = x
		}
	}
	return d
}

func TestGemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {17, 9, 33}, {64, 64, 64}, {65, 63, 130}, {2, 128, 1},
	}
	for _, tc := range cases {
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				lda, ldb, ldc := tc.k, tc.n, tc.n
				if transA {
					lda = tc.m
				}
				if transB {
					ldb = tc.k
				}
				a := randSlice(rng, tc.m*tc.k)
				b := randSlice(rng, tc.k*tc.n)
				c0 := randSlice(rng, tc.m*tc.n)
				got := append([]float32(nil), c0...)
				want := append([]float32(nil), c0...)
				Gemm(transA, transB, tc.m, tc.n, tc.k, 0.5, a, lda, b, ldb, 0.25, got, ldc)
				gemmRef(transA, transB, tc.m, tc.n, tc.k, 0.5, a, lda, b, ldb, 0.25, want, ldc)
				if d := maxDiff(got, want); d > 1e-3 {
					t.Fatalf("m=%d n=%d k=%d tA=%v tB=%v: maxdiff=%g", tc.m, tc.n, tc.k, transA, transB, d)
				}
			}
		}
	}
}

func TestGemmLeadingDimensionPadding(t *testing.T) {
	// C has padding columns that must remain untouched.
	const m, n, k, ldc = 4, 3, 5, 8
	rng := rand.New(rand.NewSource(2))
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c := make([]float32, m*ldc)
	for i := range c {
		c[i] = -99
	}
	Gemm(false, false, m, n, k, 1, a, k, b, n, 0, c, ldc)
	for i := 0; i < m; i++ {
		for j := n; j < ldc; j++ {
			if c[i*ldc+j] != -99 {
				t.Fatalf("padding c[%d,%d] clobbered: %v", i, j, c[i*ldc+j])
			}
		}
	}
}

func TestGemmBetaOne(t *testing.T) {
	// beta=1 must accumulate, not overwrite.
	a := []float32{1, 0, 0, 1}
	b := []float32{2, 3, 4, 5}
	c := []float32{10, 10, 10, 10}
	Gemm(false, false, 2, 2, 2, 1, a, 2, b, 2, 1, c, 2)
	want := []float32{12, 13, 14, 15}
	if maxDiff(c, want) > 1e-6 {
		t.Fatalf("got %v want %v", c, want)
	}
}

func TestGemmAlphaZeroShortCircuit(t *testing.T) {
	a := []float32{float32(math.NaN())}
	b := []float32{float32(math.NaN())}
	c := []float32{3}
	Gemm(false, false, 1, 1, 1, 0, a, 1, b, 1, 1, c, 1)
	if c[0] != 3 {
		t.Fatalf("alpha=0 beta=1 should leave C untouched, got %v", c[0])
	}
}

func TestGemmKZero(t *testing.T) {
	c := []float32{1, 2}
	Gemm(false, false, 1, 2, 0, 1, nil, 0, nil, 2, 0.5, c, 2)
	if c[0] != 0.5 || c[1] != 1 {
		t.Fatalf("k=0 should just scale C: %v", c)
	}
}

func TestGemmEmptyOutput(t *testing.T) {
	// Must not panic.
	Gemm(false, false, 0, 0, 4, 1, nil, 4, nil, 0, 0, nil, 0)
}

func TestGemmDimensionChecks(t *testing.T) {
	cases := []func(){
		func() { Gemm(false, false, -1, 2, 2, 1, nil, 2, nil, 2, 0, nil, 2) },
		func() {
			Gemm(false, false, 2, 2, 2, 1, make([]float32, 3), 2, make([]float32, 4), 2, 0, make([]float32, 4), 2)
		},
		func() {
			Gemm(false, false, 2, 2, 2, 1, make([]float32, 4), 1, make([]float32, 4), 2, 0, make([]float32, 4), 2)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStridedBatchedGemmMatchesLoop(t *testing.T) {
	const m, n, k, batch = 7, 5, 9, 6
	rng := rand.New(rand.NewSource(3))
	a := randSlice(rng, batch*m*k)
	b := randSlice(rng, batch*k*n)
	got := make([]float32, batch*m*n)
	want := make([]float32, batch*m*n)
	StridedBatchedGemm(false, true, m, n, k, 1, a, k, m*k, b, k, n*k, 0, got, n, m*n, batch)
	for bi := 0; bi < batch; bi++ {
		gemmRef(false, true, m, n, k, 1, a[bi*m*k:], k, b[bi*n*k:], k, 0, want[bi*m*n:], n)
	}
	if d := maxDiff(got, want); d > 1e-3 {
		t.Fatalf("strided batched maxdiff=%g", d)
	}
}

func TestStridedBatchedGemmZeroBatch(t *testing.T) {
	StridedBatchedGemm(false, false, 2, 2, 2, 1, nil, 2, 0, nil, 2, 0, 0, nil, 2, 0, 0)
}

func TestBatchedGemmMatchesLoop(t *testing.T) {
	const m, n, k, batch = 4, 6, 3, 5
	rng := rand.New(rand.NewSource(4))
	as := make([][]float32, batch)
	bs := make([][]float32, batch)
	cs := make([][]float32, batch)
	want := make([][]float32, batch)
	for i := range as {
		as[i] = randSlice(rng, m*k)
		bs[i] = randSlice(rng, k*n)
		cs[i] = make([]float32, m*n)
		want[i] = make([]float32, m*n)
	}
	BatchedGemm(false, false, m, n, k, 2, as, bs, 0, cs)
	for i := range as {
		gemmRef(false, false, m, n, k, 2, as[i], k, bs[i], n, 0, want[i], n)
	}
	for i := range cs {
		if d := maxDiff(cs[i], want[i]); d > 1e-3 {
			t.Fatalf("batch %d maxdiff=%g", i, d)
		}
	}
}

func TestBatchedGemmCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BatchedGemm(false, false, 1, 1, 1, 1, make([][]float32, 2), make([][]float32, 1), 0, make([][]float32, 2))
}

// Property: distributivity A(B+C) == AB + AC (within FP32 slack).
func TestQuickGemmDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, n, k = 5, 4, 6
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c := randSlice(rng, k*n)
		bc := make([]float32, k*n)
		for i := range bc {
			bc[i] = b[i] + c[i]
		}
		left := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1, a, k, bc, n, 0, left, n)
		right := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1, a, k, b, n, 0, right, n)
		Gemm(false, false, m, n, k, 1, a, k, c, n, 1, right, n)
		return maxDiff(left, right) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: identity matrix is a left identity.
func TestQuickGemmIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		eye := make([]float32, n*n)
		for i := 0; i < n; i++ {
			eye[i*n+i] = 1
		}
		b := randSlice(rng, n*n)
		c := make([]float32, n*n)
		Gemm(false, false, n, n, n, 1, eye, n, b, n, 0, c, n)
		return maxDiff(c, b) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ == BᵀAᵀ, exercised through the transpose flags.
func TestQuickGemmTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, n, k = 6, 7, 5
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		ab := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1, a, k, b, n, 0, ab, n)
		// Compute Bᵀ·Aᵀ as an n×m product using trans flags on the originals.
		btat := make([]float32, n*m)
		Gemm(true, true, n, m, k, 1, b, n, a, k, 0, btat, m)
		// Compare ab[i,j] with btat[j,i].
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(float64(ab[i*n+j])-float64(btat[j*m+i])) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGemmNN256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 256
	a := randSlice(rng, n*n)
	bb := randSlice(rng, n*n)
	c := make([]float32, n*n)
	b.SetBytes(int64(2 * n * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, n, n, n, 1, a, n, bb, n, 0, c, n)
	}
}

func BenchmarkGemmNTAttention(b *testing.B) {
	// Q·Kᵀ shape for one head: seq=128, head_dim=64.
	rng := rand.New(rand.NewSource(1))
	const s, d = 128, 64
	q := randSlice(rng, s*d)
	kk := randSlice(rng, s*d)
	c := make([]float32, s*s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, true, s, s, d, 1, q, d, kk, d, 0, c, s)
	}
}
