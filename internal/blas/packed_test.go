package blas

import (
	"math/rand"
	"testing"
)

// TestGroupedStridedBatchedGemmMatchesPlainGemm: every (group, batch)
// problem must equal a standalone Gemm on the same operands, for mixed
// shapes across groups (the packed-attention use case: per-request m/n/k).
func TestGroupedStridedBatchedGemmMatchesPlainGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, transB := range []bool{false, true} {
		var groups []StridedBatch
		type ref struct {
			m, n, k int
			a, b, c []float32
		}
		var refs []ref
		for g := 0; g < 4; g++ {
			m, n, k := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
			count := 1 + rng.Intn(3)
			mk, kn := m*k, k*n
			a := make([]float32, count*mk)
			b := make([]float32, count*kn)
			c := make([]float32, count*m*n)
			for i := range a {
				a[i] = rng.Float32()*2 - 1
			}
			for i := range b {
				b[i] = rng.Float32()*2 - 1
			}
			ldb := n
			if transB {
				ldb = k
			}
			groups = append(groups, StridedBatch{
				M: m, N: n, K: k,
				A: a, Lda: k, StrideA: mk,
				B: b, Ldb: ldb, StrideB: kn,
				C: c, Ldc: n, StrideC: m * n,
				Count: count,
			})
			for i := 0; i < count; i++ {
				refs = append(refs, ref{m: m, n: n, k: k,
					a: a[i*mk : (i+1)*mk], b: b[i*kn : (i+1)*kn],
					c: make([]float32, m*n)})
			}
		}
		GroupedStridedBatchedGemm(false, transB, 1, 0, groups)

		ri := 0
		for gi, grp := range groups {
			for i := 0; i < grp.Count; i++ {
				r := refs[ri]
				ri++
				ldb := r.n
				if transB {
					ldb = r.k
				}
				Gemm(false, transB, r.m, r.n, r.k, 1, r.a, r.k, r.b, ldb, 0, r.c, r.n)
				got := grp.C[i*grp.StrideC : i*grp.StrideC+r.m*r.n]
				for j := range r.c {
					if got[j] != r.c[j] {
						t.Fatalf("transB=%v group %d batch %d elem %d: grouped %g != plain %g",
							transB, gi, i, j, got[j], r.c[j])
					}
				}
			}
		}
	}
}

// TestGroupedStridedBatchedGemmEmptyGroups: zero-count groups are legal and
// must leave everything untouched.
func TestGroupedStridedBatchedGemmEmptyGroups(t *testing.T) {
	c := []float32{7}
	GroupedStridedBatchedGemm(false, false, 1, 0, []StridedBatch{
		{M: 1, N: 1, K: 1, A: c, Lda: 1, B: c, Ldb: 1, C: c, Ldc: 1, Count: 0},
	})
	if c[0] != 7 {
		t.Fatal("empty group mutated C")
	}
	GroupedStridedBatchedGemm(false, false, 1, 0, nil)
}
