package blas

import (
	"fmt"
	"runtime"
	"sync"
)

// StridedBatchedGemm performs batchCount independent GEMMs:
//
//	C_b = alpha * op(A_b) * op(B_b) + beta * C_b
//
// where A_b = a[b*strideA:], etc. This is the cublasGemmStridedBatched
// analogue used for attention's per-head Q·Kᵀ and scores·V products
// ("batched stride gemm3/gemm4" in Fig. 3).
//
// Batches run in parallel across goroutines; each batch runs its GEMM
// serially, which is the right grain because attention batches are many
// and small.
func StridedBatchedGemm(transA, transB bool, m, n, k int, alpha float32,
	a []float32, lda int, strideA int,
	b []float32, ldb int, strideB int,
	beta float32,
	c []float32, ldc int, strideC int,
	batchCount int) {

	if batchCount < 0 {
		panic(fmt.Sprintf("blas: negative batchCount %d", batchCount))
	}
	if batchCount == 0 {
		return
	}
	if strideA < 0 || strideB < 0 || strideC < 0 {
		panic("blas: negative stride")
	}
	// Validate the final batch reaches into the slices; per-batch GEMM
	// argument checks catch the rest.
	last := batchCount - 1
	runBatches(batchCount, func(bi int) {
		_ = last
		ab := a[bi*strideA:]
		bb := b[bi*strideB:]
		cb := c[bi*strideC:]
		checkGemmArgs(transA, transB, m, n, k, ab, lda, bb, ldb, cb, ldc)
		scaleC(beta, cb, m, n, ldc)
		if k == 0 || alpha == 0 || m == 0 || n == 0 {
			return
		}
		gemmBlock(transA, transB, 0, m, n, k, alpha, ab, lda, bb, ldb, cb, ldc)
	})
}

// BatchedGemm performs independent GEMMs over explicit slices. All problems
// share the same dims and transpose flags.
func BatchedGemm(transA, transB bool, m, n, k int, alpha float32,
	as, bs [][]float32, beta float32, cs [][]float32) {

	if len(as) != len(bs) || len(as) != len(cs) {
		panic(fmt.Sprintf("blas: batched slice counts differ: %d %d %d", len(as), len(bs), len(cs)))
	}
	lda, ldb, ldc := k, n, n
	if transA {
		lda = m
	}
	if transB {
		ldb = k
	}
	runBatches(len(as), func(bi int) {
		checkGemmArgs(transA, transB, m, n, k, as[bi], lda, bs[bi], ldb, cs[bi], ldc)
		scaleC(beta, cs[bi], m, n, ldc)
		if k == 0 || alpha == 0 || m == 0 || n == 0 {
			return
		}
		gemmBlock(transA, transB, 0, m, n, k, alpha, as[bi], lda, bs[bi], ldb, cs[bi], ldc)
	})
}

// runBatches executes fn(0..n-1) with bounded parallelism.
func runBatches(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
