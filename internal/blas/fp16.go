package blas

import (
	"sync"

	"repro/internal/tensor"
)

// FP16 GEMM route: the Turbo-TC emulation. Tensor Cores consume binary16
// operands and accumulate in fp32 (§6.2.1), so this route stores operands as
// binary16 bit patterns, decodes them into fp32 scratch at the GEMM boundary
// (the "load conversion" a Tensor Core does in hardware), and runs the exact
// same fp32-accumulating kernels as the fp32 route. Because every binary16
// value is exactly representable in float32, GemmF16 over encoded operands is
// bit-identical to Gemm over the same operands rounded through
// tensor.RoundSliceF16 — the property the fp16 path's exactness tests pin.
// The decode scratch is host-side emulation cost and is not charged to the
// simulated device; on real hardware the conversion happens inside the MMA
// load, not in a separate buffer.

// Half is a binary16-encoded operand: each element is an IEEE 754 binary16
// bit pattern as produced by tensor.F32ToF16Bits. It aliases []uint16 so
// allocator buffers (Buffer.DataU16, Block.DataU16) are Halves without
// conversion.
type Half = []uint16

// f16Scratch pools the fp32 decode buffers so steady-state serving does not
// allocate per GEMM call.
var f16Scratch = sync.Pool{New: func() any { s := make([]float32, 0, 4096); return &s }}

func getF16Scratch(n int) (*[]float32, []float32) {
	p := f16Scratch.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	buf := (*p)[:n]
	return p, buf
}

func putF16Scratch(p *[]float32) { f16Scratch.Put(p) }

// operandElems returns how many elements of a (possibly leading-dimension-
// padded) GEMM operand must be decoded: the span touched by a rows×cols
// matrix with leading dimension ld, (rows-1)*ld + cols.
func operandElems(trans bool, rows, cols, ld int) int {
	if trans {
		rows, cols = cols, rows
	}
	if rows == 0 {
		return 0
	}
	return (rows-1)*ld + cols
}

// GemmF16 is Gemm with both operands stored as binary16: C = alpha·A·B +
// beta·C with fp32 accumulation into an fp32 C. Operand extents are decoded
// into pooled fp32 scratch and handed to the fp32 kernels, so accumulation
// order — and therefore bit-level results — match the fp32 route exactly.
func GemmF16(transA, transB bool, m, n, k int, alpha float32, a Half, lda int, b Half, ldb int, beta float32, c []float32, ldc int) {
	na := operandElems(transA, m, k, lda)
	nb := operandElems(transB, k, n, ldb)
	pa, af := getF16Scratch(na)
	pb, bf := getF16Scratch(nb)
	tensor.DecodeF16Slice(af, a[:na])
	tensor.DecodeF16Slice(bf, b[:nb])
	Gemm(transA, transB, m, n, k, alpha, af, lda, bf, ldb, beta, c, ldc)
	putF16Scratch(pa)
	putF16Scratch(pb)
}

// GemmF16A32 is GemmF16 with an fp32 A operand (already binary16-valued, e.g.
// softmax probabilities rounded through RoundSliceF16) against a binary16 B.
// It models the mixed case where one Tensor Core operand comes straight from
// a prior kernel's fp16 output register.
func GemmF16A32(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b Half, ldb int, beta float32, c []float32, ldc int) {
	nb := operandElems(transB, k, n, ldb)
	pb, bf := getF16Scratch(nb)
	tensor.DecodeF16Slice(bf, b[:nb])
	Gemm(transA, transB, m, n, k, alpha, a, lda, bf, ldb, beta, c, ldc)
	putF16Scratch(pb)
}

// StridedBatchF16 is one group of a grouped strided-batched fp16 GEMM.
// Exactly one of A/AF and one of B/BF must be non-nil: the Half field when
// the operand lives in binary16 storage (weights, KV blocks), the fp32 field
// when it is a binary16-valued fp32 buffer (softmax probabilities). C always
// accumulates in fp32.
type StridedBatchF16 struct {
	M, N, K int

	A       Half
	AF      []float32
	Lda     int
	StrideA int

	B       Half
	BF      []float32
	Ldb     int
	StrideB int

	C       []float32
	Ldc     int
	StrideC int

	Count int
}

// unionElems returns the element span covered by all Count strided problems
// of one operand: (Count-1)*stride + extent of a single problem.
func unionElems(trans bool, rows, cols, ld, stride, count int) int {
	if count == 0 {
		return 0
	}
	one := operandElems(trans, rows, cols, ld)
	if one == 0 {
		return 0
	}
	return (count-1)*stride + one
}

// GroupedStridedBatchedGemmF16 runs variable-shape groups of strided-batched
// binary16 GEMMs with fp32 accumulation. Each group's Half operands are
// decoded once (the whole strided union, not per sub-problem) and the result
// is computed by GroupedStridedBatchedGemm, keeping the fp32 route's
// accumulation order and parallel schedule bit for bit.
func GroupedStridedBatchedGemmF16(transA, transB bool, alpha, beta float32, groups []StridedBatchF16) {
	if len(groups) == 0 {
		return
	}
	plain := make([]StridedBatch, len(groups))
	pins := make([]*[]float32, 0, 2*len(groups))
	for i := range groups {
		g := &groups[i]
		af := g.AF
		if af == nil {
			na := unionElems(transA, g.M, g.K, g.Lda, g.StrideA, g.Count)
			p, buf := getF16Scratch(na)
			tensor.DecodeF16Slice(buf, g.A[:na])
			af, pins = buf, append(pins, p)
		}
		bf := g.BF
		if bf == nil {
			nb := unionElems(transB, g.K, g.N, g.Ldb, g.StrideB, g.Count)
			p, buf := getF16Scratch(nb)
			tensor.DecodeF16Slice(buf, g.B[:nb])
			bf, pins = buf, append(pins, p)
		}
		plain[i] = StridedBatch{
			M: g.M, N: g.N, K: g.K,
			A: af, Lda: g.Lda, StrideA: g.StrideA,
			B: bf, Ldb: g.Ldb, StrideB: g.StrideB,
			C: g.C, Ldc: g.Ldc, StrideC: g.StrideC,
			Count: g.Count,
		}
	}
	GroupedStridedBatchedGemm(transA, transB, alpha, beta, plain)
	for _, p := range pins {
		putF16Scratch(p)
	}
}

// EncodeHalf rounds src through binary16 into a freshly allocated Half.
// Convenience for one-time weight encoding; hot paths should encode into
// reused buffers with tensor.EncodeF16Slice.
func EncodeHalf(src []float32) Half {
	h := make(Half, len(src))
	tensor.EncodeF16Slice(h, src)
	return h
}
