// Command turbo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	turbo-bench -list             # enumerate artefacts
//	turbo-bench -run fig5,fig14   # regenerate selected artefacts
//	turbo-bench                   # regenerate everything (paper order)
//	turbo-bench -out results.txt  # write to a file instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	turbo "repro"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	out := flag.String("out", "", "output file (default: stdout)")
	jsonOut := flag.String("json", "", "also write the key metrics of the executed experiments as machine-readable JSON (the BENCH_*.json artefact)")
	flag.Parse()

	if *list {
		for _, id := range turbo.Experiments() {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *run == "" {
		if err := turbo.RunAllExperiments(w); err != nil {
			fatal(err)
		}
		writeMetrics(*jsonOut)
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := turbo.RunExperiment(id, w); err != nil {
			fatal(err)
		}
	}
	writeMetrics(*jsonOut)
}

// writeMetrics persists the key metrics recorded by the experiments that
// just ran (no-op without -json).
func writeMetrics(path string) {
	if path == "" {
		return
	}
	if err := turbo.WriteBenchMetrics(path); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "turbo-bench: wrote metrics to", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "turbo-bench:", err)
	os.Exit(1)
}
