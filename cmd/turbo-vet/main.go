// Command turbo-vet runs the repo's domain-specific static analyzers — the
// invariants nine PRs of review have enforced by hand, as build failures:
//
//	go run ./cmd/turbo-vet ./...
//
// Findings print as file:line:col: analyzer: message and the process exits
// 1 when any survive. Deliberate violations are suppressed in place:
//
//	//turbovet:allow <analyzer>[,<analyzer>...] -- reason
//
// on the offending line or the line directly above. Run it from inside the
// module (package loading resolves imports through the go tool). See
// `turbo-vet -help` for the analyzer roster.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	help := flag.Bool("help", false, "print the analyzer roster and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: turbo-vet [packages]\n\nruns the turbo-vet analyzer suite over the given go-list patterns\n(default ./...) and exits 1 on findings\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *help {
		for _, a := range analyzers {
			fmt.Printf("%s\n\t%s\n\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbo-vet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbo-vet:", err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbo-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "turbo-vet: %d finding(s)\n", found)
		os.Exit(1)
	}
}
