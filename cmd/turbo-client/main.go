// Command turbo-client drives a turbo-serve instance with Poisson-arriving
// requests of uniformly random length and reports latency statistics —
// the client side of the §6.3 serving experiments, against a real server.
//
//	turbo-client -addr http://localhost:8080 -rate 50 -duration 10s
//
// With -gen-frac > 0 a fraction of requests become streaming /v1/generate
// calls, and the report splits generation latency into its two phases:
// time-to-first-token (prefill + queueing + any prefill→decode KV hand-off)
// and the per-token decode gap — the numbers a prefill/decode-disaggregated
// deployment moves independently.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	rate := flag.Float64("rate", 20, "offered load (requests/second)")
	duration := flag.Duration("duration", 10*time.Second, "test duration")
	lenLo := flag.Int("len-lo", 2, "minimum request length (characters)")
	lenHi := flag.Int("len-hi", 100, "maximum request length (characters)")
	deadlineMS := flag.Int("deadline-ms", 0, "per-request deadline_ms sent to the server (0 = none; expired requests come back 504)")
	genFrac := flag.Float64("gen-frac", 0, "fraction of requests sent as streaming /v1/generate instead of /v1/classify")
	genMaxNew := flag.Int("gen-max-new", 16, "max_new_tokens for generate requests")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	// turbo-serve's -addr is a bare host:port; accept the same form here.
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}

	rng := rand.New(rand.NewSource(*seed))
	client := &http.Client{Timeout: 120 * time.Second}

	var (
		mu        sync.Mutex
		latencies []float64 // classify end-to-end seconds
		ttfts     []float64 // generate: arrival → first streamed token
		tokGaps   []float64 // generate: mean inter-token decode gap
		genTotals []float64 // generate end-to-end seconds
		rejected  int       // 429: admission queue full (backpressure)
		expired   int       // 504: deadline passed before scheduling
		errs      int
		wg        sync.WaitGroup
	)

	deadline := time.Now().Add(*duration)
	sent := 0
	for time.Now().Before(deadline) {
		// Poisson inter-arrival times.
		gap := time.Duration(rng.ExpFloat64() / *rate * float64(time.Second))
		time.Sleep(gap)
		n := *lenLo + rng.Intn(*lenHi-*lenLo+1)
		text := randomText(rng, n)
		isGen := *genFrac > 0 && rng.Float64() < *genFrac
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			var (
				status   int
				err      error
				ttft     float64
				tokGap   float64
				gotToken bool
			)
			if isGen {
				status, ttft, tokGap, gotToken, err = streamGenerate(client, *addr, text, *genMaxNew, start)
			} else {
				req := map[string]interface{}{"text": text}
				if *deadlineMS > 0 {
					req["deadline_ms"] = *deadlineMS
				}
				body, _ := json.Marshal(req)
				var resp *http.Response
				resp, err = client.Post(*addr+"/v1/classify", "application/json", bytes.NewReader(body))
				if err == nil {
					status = resp.StatusCode
					resp.Body.Close()
				}
			}
			elapsed := time.Since(start).Seconds()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			switch status {
			case http.StatusOK:
				if isGen {
					genTotals = append(genTotals, elapsed)
					if gotToken {
						ttfts = append(ttfts, ttft)
						if tokGap > 0 {
							tokGaps = append(tokGaps, tokGap)
						}
					}
				} else {
					latencies = append(latencies, elapsed)
				}
			case http.StatusTooManyRequests:
				rejected++
			case http.StatusGatewayTimeout:
				expired++
			default:
				errs++
			}
		}()
	}
	wg.Wait()

	ok := len(latencies) + len(genTotals)
	if ok == 0 {
		log.Fatalf("no successful responses (%d rejected, %d expired, %d errors)", rejected, expired, errs)
	}
	fmt.Printf("sent %d, ok %d, rejected(429) %d, expired(504) %d, errors %d\n",
		sent, ok, rejected, expired, errs)
	fmt.Printf("throughput: %.1f resp/s\n", float64(ok)/duration.Seconds())
	if len(latencies) > 0 {
		report("classify ms", latencies)
	}
	if len(genTotals) > 0 {
		report("generate total ms", genTotals)
		if len(ttfts) > 0 {
			report("generate TTFT ms", ttfts)
		}
		if len(tokGaps) > 0 {
			report("decode tok-gap ms", tokGaps)
		}
	}
}

// streamGenerate posts a streaming /v1/generate request and measures the two
// generation phases: ttft is arrival → first NDJSON token line, tokGap the
// mean gap between consecutive token lines ((last-first)/(n-1)).
func streamGenerate(client *http.Client, addr, text string, maxNew int, start time.Time) (status int, ttft, tokGap float64, gotToken bool, err error) {
	body, _ := json.Marshal(map[string]interface{}{
		"text": text, "max_new_tokens": maxNew, "stream": true,
	})
	resp, err := client.Post(addr+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if status != http.StatusOK {
		return status, 0, 0, false, nil
	}
	var (
		first, last time.Time
		tokens      int
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var chunk struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if json.Unmarshal(line, &chunk) != nil {
			continue
		}
		if chunk.Error != "" {
			return http.StatusInternalServerError, 0, 0, false, nil
		}
		if chunk.Done {
			continue
		}
		// Every non-terminal line carries exactly one streamed token.
		now := time.Now()
		if tokens == 0 {
			first = now
		}
		last = now
		tokens++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, 0, false, err
	}
	if tokens > 0 {
		gotToken = true
		ttft = first.Sub(start).Seconds()
		if tokens > 1 {
			tokGap = last.Sub(first).Seconds() / float64(tokens-1)
		}
	}
	return status, ttft, tokGap, gotToken, nil
}

func report(name string, xs []float64) {
	sort.Float64s(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	pct := func(p float64) float64 { return xs[int(p*float64(len(xs)-1))] }
	fmt.Printf("%s: avg %.2f  min %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f  (n=%d)\n",
		name, 1e3*sum/float64(len(xs)), 1e3*xs[0],
		1e3*pct(0.50), 1e3*pct(0.95), 1e3*pct(0.99), 1e3*xs[len(xs)-1], len(xs))
}

func randomText(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz "
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
