// Command turbo-client drives a turbo-serve instance with Poisson-arriving
// requests of uniformly random length and reports latency statistics —
// the client side of the §6.3 serving experiments, against a real server.
//
//	turbo-client -addr http://localhost:8080 -rate 50 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	rate := flag.Float64("rate", 20, "offered load (requests/second)")
	duration := flag.Duration("duration", 10*time.Second, "test duration")
	lenLo := flag.Int("len-lo", 2, "minimum request length (characters)")
	lenHi := flag.Int("len-hi", 100, "maximum request length (characters)")
	deadlineMS := flag.Int("deadline-ms", 0, "per-request deadline_ms sent to the server (0 = none; expired requests come back 504)")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		mu        sync.Mutex
		latencies []float64
		rejected  int // 429: admission queue full (backpressure)
		expired   int // 504: deadline passed before scheduling
		errs      int
		wg        sync.WaitGroup
	)

	deadline := time.Now().Add(*duration)
	sent := 0
	for time.Now().Before(deadline) {
		// Poisson inter-arrival times.
		gap := time.Duration(rng.ExpFloat64() / *rate * float64(time.Second))
		time.Sleep(gap)
		n := *lenLo + rng.Intn(*lenHi-*lenLo+1)
		text := randomText(rng, n)
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			req := map[string]interface{}{"text": text}
			if *deadlineMS > 0 {
				req["deadline_ms"] = *deadlineMS
			}
			body, _ := json.Marshal(req)
			resp, err := client.Post(*addr+"/v1/classify", "application/json", bytes.NewReader(body))
			elapsed := time.Since(start).Seconds()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				latencies = append(latencies, elapsed)
			case http.StatusTooManyRequests:
				rejected++
			case http.StatusGatewayTimeout:
				expired++
			default:
				errs++
			}
		}()
	}
	wg.Wait()

	if len(latencies) == 0 {
		log.Fatalf("no successful responses (%d rejected, %d expired, %d errors)", rejected, expired, errs)
	}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	pct := func(p float64) float64 { return latencies[int(p*float64(len(latencies)-1))] }
	fmt.Printf("sent %d, ok %d, rejected(429) %d, expired(504) %d, errors %d\n",
		sent, len(latencies), rejected, expired, errs)
	fmt.Printf("throughput: %.1f resp/s\n", float64(len(latencies))/duration.Seconds())
	fmt.Printf("latency ms: avg %.2f  min %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		1e3*sum/float64(len(latencies)), 1e3*latencies[0],
		1e3*pct(0.50), 1e3*pct(0.95), 1e3*pct(0.99), 1e3*latencies[len(latencies)-1])
}

func randomText(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz "
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
