// Command turbo-serve runs the live serving framework: a BERT-style
// classification service with the paper's DP batch scheduling over a
// warmed-up cost dictionary, plus continuous-batching generation — both
// behind ONE bounded, context-aware admission queue.
//
//	turbo-serve -addr :8080 -classes 4 -hidden 128 -layers 4
//
// Endpoints:
//
//	POST /v1/classify {"text": "...", "deadline_ms": n, "priority": p}
//	                                   → {"class": k, "batch_size": b, ...}
//	POST /v1/generate {"text": "...", "max_new_tokens": n, "stream": true}
//	                                   → continuous-batching generation
//	                                     (NDJSON token stream, or one JSON
//	                                     object when stream is false)
//	GET  /v1/stats                     → serving counters (queue depth,
//	                                     rejected/expired/cancelled jobs,
//	                                     padding waste, KV reservations)
//
// A full admission queue answers 429 + Retry-After; SIGINT/SIGTERM drains
// in-flight work (bounded by -drain-timeout) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	turbo "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	classes := flag.Int("classes", 4, "number of output classes")
	hidden := flag.Int("hidden", 128, "hidden size (CPU-friendly default)")
	heads := flag.Int("heads", 4, "attention heads")
	layers := flag.Int("layers", 4, "encoder layers")
	maxBatch := flag.Int("max-batch", 8, "maximum batch size")
	maxLen := flag.Int("max-len", 128, "maximum request length for the warm-up sweep")
	cacheSize := flag.Int("cache", 1024, "response cache entries (0 disables)")
	seed := flag.Int64("seed", 42, "weight seed")
	costFile := flag.String("cost-file", "", "persist/reload the warm-up cost dictionary (§5: stored on disk, reloaded on restart)")
	batchWindow := flag.Duration("batch-window", 0, "lazy-strategy accumulation window (0 = hungry strategy)")
	fp16 := flag.Bool("fp16", false, "run the binary16 fast path: fp16-storage GEMMs, half-size KV cache, fused launch chains (fp32 stays the default)")
	packed := flag.Bool("packed", false, "run the zero-padding (packed) engine: ragged batches, no padding FLOPs, token-based batch scheduling")
	queueDepth := flag.Int("queue-depth", 256, "bounded admission queue depth per replica (submissions beyond it get 429)")
	replicas := flag.Int("replicas", 1, "independent serving replicas behind the routed front door (1 = single server, no router)")
	balance := flag.String("balance", "token-cost", "replica routing policy: round-robin, least-queue, or token-cost")
	rolesFlag := flag.String("roles", "", "comma-separated replica roles (prefill,decode,mixed); when set, the replica count is len(roles) and generations hand KV off from prefill to decode replicas")
	autoMin := flag.Int("autoscale-min", 0, "elastic fleet lower bound; with -autoscale-max it replaces -replicas and an autoscale control loop sizes the fleet (0 disables)")
	autoMax := flag.Int("autoscale-max", 0, "elastic fleet upper bound (see -autoscale-min)")
	autoTick := flag.Duration("autoscale-tick", 0, "autoscale control-loop sampling period (0 = default 250ms, the drain-meter window)")
	sloBudget := flag.Int("slo-budget", 0, "deadline misses a priority class may accumulate inside -slo-window before further jobs of that class are shed at admission with 504 (0 disables)")
	sloWindow := flag.Duration("slo-window", 0, "sliding window -slo-budget is counted over (0 = default 5s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: in-flight work is aborted past this")
	generate := flag.Bool("generate", true, "enable the /v1/generate continuous-batching path")
	genMaxBatch := flag.Int("gen-max-batch", 8, "max concurrent decode sequences")
	genTokenBudget := flag.Int("gen-token-budget", 0, "cap on summed worst-case context tokens across running generations (0 = unlimited)")
	genMaxNew := flag.Int("gen-max-new", 32, "default max_new_tokens for /v1/generate")
	genPerRow := flag.Bool("gen-per-row", false, "decode with the per-row reference attention instead of the grouped ragged kernels (bit-identical oracle, for debugging/benchmarks)")
	genPaged := flag.Bool("gen-paged", false, "page the generation KV cache through a fixed block pool with shared-prefix caching (block-gated admission, lossless preemption)")
	genKVBlocks := flag.Int("gen-kv-blocks", 0, "paged-KV block pool capacity (0 = derive from decoder geometry)")
	genPrefixEntries := flag.Int("gen-prefix-entries", 0, "retired generations the prefix cache keeps for prompt-identical replay (0 = default 64)")
	flag.Parse()

	cfg := turbo.BertBase().Scaled(*hidden, *heads, 4**hidden, *layers)

	policy, err := turbo.ParseBalancePolicy(*balance)
	if err != nil {
		log.Fatal(err)
	}

	roles, err := turbo.ParseReplicaRoles(*rolesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if len(roles) > 0 {
		// Roles imply the replica count: one replica per role tag.
		*replicas = len(roles)
		log.Printf("replica roles %s: running %d replicas", *rolesFlag, *replicas)
	}

	// One option list is the whole configuration: engine knobs, serving
	// knobs, replicas, and the generation path all hang off the same front
	// door.
	opts := []turbo.Option{
		turbo.WithSeed(*seed),
		turbo.WithClasses(*classes),
		turbo.WithMaxBatch(*maxBatch),
		turbo.WithCache(*cacheSize),
		turbo.WithBatchWindow(*batchWindow),
		turbo.WithQueueDepth(*queueDepth),
		turbo.WithBalancePolicy(policy),
	}
	elastic := *autoMin != 0 || *autoMax != 0
	if elastic {
		// The control loop sizes the fleet between the bounds; -replicas
		// does not apply (turbo.Serve refuses the combination).
		opts = append(opts, turbo.WithAutoscale(*autoMin, *autoMax))
		if *autoTick > 0 {
			opts = append(opts, turbo.WithAutoscaleTick(*autoTick))
		}
	} else {
		opts = append(opts, turbo.WithReplicas(*replicas))
	}
	if *sloBudget > 0 {
		opts = append(opts, turbo.WithSLOBudget(*sloBudget, *sloWindow))
	}
	if *packed {
		opts = append(opts, turbo.WithPacked())
	}
	if *fp16 {
		opts = append(opts, turbo.WithFP16())
	}
	if *generate {
		decCfg := turbo.Seq2SeqDecoder().Scaled(*hidden, *heads, 4**hidden, *layers)
		opts = append(opts,
			turbo.WithGeneration(decCfg),
			turbo.WithGenMaxBatch(*genMaxBatch),
			turbo.WithGenTokenBudget(*genTokenBudget),
			turbo.WithGenDefaultMaxNew(*genMaxNew),
		)
		if *genPerRow {
			opts = append(opts, turbo.WithPerRowDecode())
		}
		if *genPaged {
			opts = append(opts, turbo.WithPagedKV(*genKVBlocks))
			if *genPrefixEntries > 0 {
				opts = append(opts, turbo.WithPrefixCache(*genPrefixEntries))
			}
		}
	}
	rt, err := turbo.NewRuntime(cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// Warm-up phase (§6.3): measure real engine latency over the sampled
	// parameter space. price runs one uniform (seqLen, batch) inference.
	price := func(seqLen, batch int) time.Duration {
		toks := make([][]int, batch)
		for i := range toks {
			row := make([]int, seqLen)
			for j := range row {
				row[j] = 3 + (i*31+j*7)%(cfg.Vocab-3)
			}
			toks[i] = row
		}
		start := time.Now()
		if _, _, err := rt.Engine.Encode(toks); err != nil {
			log.Fatalf("warmup: %v", err)
		}
		return time.Since(start)
	}

	var cost turbo.CostModel
	// The token-cost routing policy prices requests with a fitted token
	// cost; the packed scheduler warm-up produces one anyway, and a
	// replicated token-cost deployment fits one just for routing.
	var routeCost *turbo.TokenCost
	if *packed {
		// Packed engine: fit the token-based cost so the DP scheduler
		// prices mixed-length batches by work actually done, not by
		// batch·maxLen (the dictionary form cannot express ragged batches,
		// so the cost file does not apply here).
		log.Printf("warming up token cost (packed engine, maxLen=%d, maxBatch=%d)...", *maxLen, *maxBatch)
		tc := turbo.WarmupTokenCost(price, *maxLen, *maxBatch, *maxLen/8)
		log.Printf("token cost ready: fixed=%.0fns perToken=%.1fns perTok²=%.3fns", tc.Fixed, tc.PerToken, tc.PerSqToken)
		cost = tc
		routeCost = tc
	} else {
		// Padded engine: reload a persisted dictionary if present,
		// otherwise sweep and let Algorithm 2 interpolate.
		var cached *turbo.CachedCost
		if *costFile != "" {
			if loaded, err := turbo.LoadCost(*costFile); err == nil {
				cached = loaded
				log.Printf("reloaded cost dictionary from %s", *costFile)
			}
		}
		if cached == nil {
			log.Printf("warming up cost dictionary (maxLen=%d, maxBatch=%d)...", *maxLen, *maxBatch)
			cached = turbo.WarmupCost(price, *maxLen, *maxBatch, *maxLen/8)
			if *costFile != "" {
				if err := turbo.SaveCost(cached, *costFile); err != nil {
					log.Printf("warning: could not persist cost dictionary: %v", err)
				} else {
					log.Printf("persisted cost dictionary to %s", *costFile)
				}
			}
		}
		cost = cached
	}
	log.Printf("cost ready; e.g. cost(len=%d, batch=1) = %v", *maxLen, cost.BatchCost(*maxLen, 1))

	serveOpts := []turbo.Option{turbo.WithScheduler(turbo.NewDPScheduler(cost, *maxBatch))}
	if len(roles) > 0 {
		serveOpts = append(serveOpts, turbo.WithReplicaRoles(roles...))
	}
	if (*replicas > 1 || elastic) && policy == turbo.TokenCostRouting {
		if routeCost == nil {
			// Padded engine: the dictionary cost cannot price single
			// requests for routing, so fit the token form just for the
			// balancer.
			log.Printf("fitting token cost for the routing policy...")
			routeCost = turbo.WarmupTokenCost(price, *maxLen, *maxBatch, *maxLen/8)
		}
		serveOpts = append(serveOpts, turbo.WithRouteCost(routeCost))
	}
	srv, err := rt.Serve(serveOpts...)
	if err != nil {
		log.Fatal(err)
	}
	if elastic {
		log.Printf("autoscaling %d..%d replicas, policy %s (shed budget: %d misses / %v)",
			*autoMin, *autoMax, policy, *sloBudget, *sloWindow)
	} else if *replicas > 1 {
		log.Printf("routing over %d replicas, policy %s", *replicas, policy)
	}
	if *generate {
		attn := "grouped ragged"
		if *genPerRow {
			attn = "per-row oracle"
		}
		kv := "contiguous KV"
		if *genPaged {
			kv = "paged KV + prefix cache"
		}
		if *fp16 {
			kv = "binary16 " + kv
		}
		log.Printf("generation enabled: decoder %d layers, hidden %d, max batch %d, %s decode attention, batched packed prefill, %s",
			*layers, *hidden, *genMaxBatch, attn, kv)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("signal received: draining (timeout %v)...", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Stop accepting connections first, then drain the job queue and
		// join the dispatchers.
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete, aborted remaining work: %v", err)
		} else {
			log.Printf("drained cleanly")
		}
	}()

	fmt.Printf("turbo-serve: %s model (%d layers, hidden %d) listening on %s\n",
		cfg.Name, cfg.Layers, cfg.Hidden, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
}
